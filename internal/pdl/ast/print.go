package ast

import (
	"fmt"
	"io"
	"strings"
)

// Fprint renders a pipeline (including compiler-internal constructs from
// translated programs) in surface-like syntax. It exists for diagnostics
// and golden tests; the output is not guaranteed to re-parse because
// internal constructs have no source syntax.
func Fprint(w io.Writer, p *PipeDecl) {
	pr := &printer{w: w}
	pr.printf("pipe %s(%s)[%s] {\n", p.Name, paramsString(p.Params), strings.Join(p.Mods, ", "))
	pr.indent++
	pr.stmts(p.Body)
	if p.Commit != nil {
		pr.indent--
		pr.printf("commit:\n")
		pr.indent++
		pr.stmts(p.Commit)
	}
	if p.Except != nil {
		pr.indent--
		pr.printf("except(%s):\n", paramsString(p.ExceptArgs))
		pr.indent++
		pr.stmts(p.Except)
	}
	pr.indent--
	pr.printf("}\n")
}

// PipeString renders a pipeline to a string; see Fprint.
func PipeString(p *PipeDecl) string {
	var b strings.Builder
	Fprint(&b, p)
	return b.String()
}

// StmtsString renders a statement list, one statement per line.
func StmtsString(stmts []Stmt) string {
	var b strings.Builder
	pr := &printer{w: &b}
	pr.stmts(stmts)
	return b.String()
}

func paramsString(params []Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.Name + ": " + p.Type.String()
	}
	return strings.Join(parts, ", ")
}

type printer struct {
	w      io.Writer
	indent int
}

func (pr *printer) printf(format string, args ...interface{}) {
	fmt.Fprint(pr.w, strings.Repeat("    ", pr.indent))
	fmt.Fprintf(pr.w, format, args...)
}

func (pr *printer) stmts(list []Stmt) {
	for _, s := range list {
		pr.stmt(s)
	}
}

func (pr *printer) stmt(s Stmt) {
	switch n := s.(type) {
	case *StageSep:
		old := pr.indent
		pr.indent = 0
		pr.printf("---\n")
		pr.indent = old
	case *Assign:
		op := "="
		if n.Latched {
			op = "<-"
		}
		pr.printf("%s %s %s;\n", n.Name, op, ExprString(n.RHS))
	case *MemWrite:
		pr.printf("%s[%s] <- %s;\n", n.Mem, ExprString(n.Index), ExprString(n.RHS))
	case *VolWrite:
		pr.printf("%s <- %s;\n", n.Vol, ExprString(n.RHS))
	case *If:
		pr.printf("if (%s) {\n", ExprString(n.Cond))
		pr.indent++
		pr.stmts(n.Then)
		pr.indent--
		if n.Else != nil {
			pr.printf("} else {\n")
			pr.indent++
			pr.stmts(n.Else)
			pr.indent--
		}
		pr.printf("}\n")
	case *Lock:
		if n.Index != nil {
			if n.Op == LockAcquire || n.Op == LockReserve {
				pr.printf("%s(%s[%s], %s);\n", n.Op, n.Mem, ExprString(n.Index), n.Mode)
			} else {
				pr.printf("%s(%s[%s]);\n", n.Op, n.Mem, ExprString(n.Index))
			}
		} else {
			if n.Op == LockAcquire || n.Op == LockReserve {
				pr.printf("%s(%s, %s);\n", n.Op, n.Mem, n.Mode)
			} else {
				pr.printf("%s(%s);\n", n.Op, n.Mem)
			}
		}
	case *Throw:
		pr.printf("throw(%s);\n", exprsString(n.Args))
	case *Call:
		if n.Result != "" {
			pr.printf("%s <- call %s(%s);\n", n.Result, n.Pipe, exprsString(n.Args))
		} else {
			pr.printf("call %s(%s);\n", n.Pipe, exprsString(n.Args))
		}
	case *SpecCall:
		pr.printf("%s <- spec_call %s(%s);\n", n.Handle, n.Pipe, exprsString(n.Args))
	case *Verify:
		pr.printf("verify(%s);\n", ExprString(n.Handle))
	case *Invalidate:
		pr.printf("invalidate(%s);\n", ExprString(n.Handle))
	case *SpecCheck:
		pr.printf("spec_check();\n")
	case *SpecBarrier:
		pr.printf("spec_barrier();\n")
	case *Return:
		pr.printf("return %s;\n", ExprString(n.Value))
	case *Skip:
		pr.printf("skip;\n")
	case *SetLEF:
		pr.printf("lef <- true;\n")
	case *SetGEF:
		pr.printf("gef <- %t;\n", n.Value)
	case *GefGuard:
		pr.printf("if (gef) { skip; } else {\n")
		pr.indent++
		pr.stmts(n.Body)
		pr.indent--
		pr.printf("}\n")
	case *LefBranch:
		pr.printf("if (lef) {\n")
		pr.indent++
		pr.stmts(n.Except)
		pr.indent--
		pr.printf("} else {\n")
		pr.indent++
		pr.stmts(n.Commit)
		pr.indent--
		pr.printf("}\n")
	case *PipeClear:
		pr.printf("pipeclear;\n")
	case *SpecClear:
		pr.printf("specclear;\n")
	case *Abort:
		pr.printf("abort(%s);\n", n.Mem)
	case *SetEArg:
		pr.printf("earg%d <- %s;\n", n.Index, ExprString(n.Value))
	default:
		pr.printf("<?stmt %T>\n", s)
	}
}

func exprsString(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression in surface syntax with explicit
// parentheses around binary operations.
func ExprString(e Expr) string {
	switch n := e.(type) {
	case *Ident:
		return n.Name
	case *IntLit:
		if n.Width > 0 {
			return fmt.Sprintf("%d'd%d", n.Width, n.Value)
		}
		return fmt.Sprintf("%d", n.Value)
	case *BoolLit:
		return fmt.Sprintf("%t", n.Value)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(n.L), n.Op, ExprString(n.R))
	case *Unary:
		op := map[UnOp]string{OpNot: "!", OpBNot: "~", OpNeg: "-"}[n.Op]
		return op + ExprString(n.X)
	case *Ternary:
		return fmt.Sprintf("(%s ? %s : %s)", ExprString(n.Cond), ExprString(n.Then), ExprString(n.Else))
	case *CallExpr:
		return fmt.Sprintf("%s(%s)", n.Name, exprsString(n.Args))
	case *MemRead:
		return fmt.Sprintf("%s[%s]", n.Mem, ExprString(n.Index))
	case *Slice:
		return fmt.Sprintf("%s[%s:%s]", ExprString(n.X), ExprString(n.Hi), ExprString(n.Lo))
	case *FieldAccess:
		return fmt.Sprintf("%s.%s", ExprString(n.X), n.Field)
	case *EArgRef:
		return fmt.Sprintf("earg%d", n.Index)
	case *GefRef:
		return "gef"
	case *LefRef:
		return "lef"
	case nil:
		return "<nil>"
	}
	return fmt.Sprintf("<?expr %T>", e)
}

// Package sim is XPDL's cycle-accurate pipeline simulator.
//
// It executes the compiler's *translated* programs (see internal/core):
// the exception machinery it runs — gef guards, padding stages, the
// rollback stage with pipeclear/specclear/abort — is exactly what the
// translation emitted, so simulating a design validates the translation,
// not a shortcut reimplementation of its intent.
//
// Execution model. Each pipeline is a graph of stage nodes: the body
// stages, an optional commit tail, and an optional exception chain. One
// instruction occupies at most one node. Every cycle, nodes are processed
// downstream-first; a node holding an instruction attempts to fire:
//
//   - Firing is atomic, like a Bluespec rule: every lock operation runs
//     inside a transaction and every machine-level effect (latched
//     variable writes, spawns, speculation updates, gef changes, volatile
//     writes, flushes) is buffered. If any condition fails — a lock is
//     not ownable, a value is not ready, the next stage register is
//     occupied, gef stalls the stage — the transaction rolls back and the
//     instruction stays put, leaving no trace.
//   - On success the transaction commits, buffered effects apply, and
//     the instruction advances (or retires).
//
// Spawned instructions enter a small entry queue; the first body stage
// pulls from it the moment it is free, which yields the expected CPI ≈ 1
// steady state for a classic five-stage pipeline.
package sim

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"

	"xpdl/internal/check"
	"xpdl/internal/core"
	"xpdl/internal/locks"
	"xpdl/internal/pdl/ast"
	"xpdl/internal/val"
	"xpdl/internal/vm"
)

// V is a runtime value: a bit vector or (for extern decode-style results)
// a record of named bit vectors. Records store fields sorted by name so
// field access resolves to an index at machine-build time. V is an alias
// of vm.V: machine state slices are shared with the bytecode dispatch
// loop without conversion, so all three executors see one representation.
type V = vm.V

// recVal is the record payload of a V (see vm.Rec).
type recVal = vm.Rec

// slotVal is one latched variable slot of an in-flight instruction
// (see vm.SlotVal).
type slotVal = vm.SlotVal

// Scalar wraps a bit vector as a V.
func Scalar(x val.Value) V { return V{Val: x} }

// Record wraps named fields as a V.
func Record(fields map[string]val.Value) V { return vm.Record(fields) }

// ExternFunc implements an extern combinational function in Go — the
// analogue of an imported Verilog module in PDL. The args slice is only
// valid for the duration of the call (the compiled executors pass a
// reusable scratch buffer); implementations must copy it to retain it.
type ExternFunc = vm.ExternFunc

// FaultInjector is the hook-point contract for deterministic fault
// injection (see internal/fault). Hooks are timing-only: a true return
// delays work by (at least) one cycle exactly as a structural hazard
// would, and must never alter a value. Implementations must be pure
// functions of their arguments — the simulator may call a hook any
// number of times per cycle and both executors must see identical
// decisions — and must be allocation-free (they run on the cycle loop).
//
// The hooks and their coordinates:
//
//   - StallStage(cycle, stage): suppress the firing attempt of the
//     stage with global id `stage` this cycle (the instruction stays
//     put, like a failed condition).
//   - DelayExtern(cycle, iid, site): stall a firing at an extern call
//     site (site is a stable hash of the extern's name) — modeling a
//     slow combinational unit / variable-latency functional unit.
//   - HoldEntry(cycle, pipe): keep pipeline #pipe (pipeOrder index)
//     from pulling its entry queue this cycle — entry backpressure.
//
// All hook sites are nil-checked: a machine built with Config.Faults
// nil pays one predictable branch per site and nothing else.
type FaultInjector interface {
	StallStage(cycle, stage int) bool
	DelayExtern(cycle int, iid uint64, site uint64) bool
	HoldEntry(cycle, pipe int) bool
}

// siteKey stably hashes an extern name to a DelayExtern site id
// (FNV-1a); both executors use it so a seed perturbs them identically.
func siteKey(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Config tunes machine construction.
type Config struct {
	// Externs binds extern function names to implementations. Every
	// extern declared by the program must be bound.
	Externs map[string]ExternFunc
	// RenamingExtra is the number of spare physical registers per
	// renaming lock (default 16).
	RenamingExtra int
	// EntryCap bounds each pipeline's entry queue (default 8).
	EntryCap int
	// TraceRetirements keeps the full retirement trace (default true
	// behaviour is controlled by the caller reading Retired).
	MaxTrace int
	// Engine selects the executor: "closure" (the compile-once stage
	// executor, the default), "interp" (the per-cycle AST interpreter,
	// kept as the differential-testing oracle and debugging aid), or
	// "vm" (the bytecode VM over struct-of-arrays state; one compiled
	// Program is shared by every machine of the same design). The three
	// are semantically identical. Empty defers to Interp.
	Engine string
	// Interp selects the AST interpreter; the legacy switch, equivalent
	// to Engine "interp". Engine wins when both are set.
	Interp bool
	// Faults plugs a deterministic fault injector into the machine's
	// hook points. nil (the default) disables injection entirely.
	Faults FaultInjector
	// WatchdogCycles is how many consecutive zero-firing cycles with
	// instructions in flight the hang watchdog tolerates before Step
	// returns a *DeadlockError. 0 selects the default (200); a negative
	// value disables the watchdog.
	WatchdogCycles int
	// Observer receives schedule events as the machine executes; nil (the
	// default) disables all notifications. The cosimulation harness uses
	// it to replay the simulator's schedule into the emitted RTL.
	Observer Observer
}

// Executor engines (resolved from Config.Engine / Config.Interp).
const (
	engClosure uint8 = iota
	engInterp
	engVM
)

// Engines lists the valid Config.Engine values, for flag help text.
func Engines() []string { return []string{"interp", "closure", "vm"} }

// ParseEngine validates an engine name (e.g. an -exec flag value),
// mapping the empty string to the default.
func ParseEngine(s string) (string, error) {
	switch s {
	case "", "closure":
		return "closure", nil
	case "interp":
		return "interp", nil
	case "vm":
		return "vm", nil
	}
	return "", fmt.Errorf("sim: unknown engine %q (want interp, closure or vm)", s)
}

// defaultWatchdog is the hang watchdog's default patience. It must
// comfortably exceed any legitimate stall a design can produce (deep
// lock queues, chained sub-pipeline calls, injected fault stalls); the
// longest observed legitimate idle stretch in the test designs is far
// under 50 cycles.
const defaultWatchdog = 200

// Retirement is one entry of the architectural retirement trace.
type Retirement struct {
	Pipe        string
	IID         uint64
	Args        []val.Value
	Exceptional bool
	EArgs       []val.Value // captured throw arguments, for exceptional retirements
	Cycle       int
}

// Machine simulates one compiled XPDL program.
type Machine struct {
	info  *check.Info
	trs   map[string]*core.Result
	cfg   Config
	pipes map[string]*pipeState
	// pipeOrder is deterministic processing order (declaration order).
	pipeOrder []string
	pipeList  []*pipeState // parallel to pipeOrder; indexed by pipeState.idx
	mems      map[string]locks.Lock
	memList   []locks.Lock // deterministic iteration for transactions
	memOrder  []string     // names parallel to memList, for diagnostics
	plains    map[string]*locks.Plain
	plainList []*locks.Plain // declaration order (vm memory indices)
	memDecl   map[string]*ast.MemDecl
	vols      map[string]*volatileReg
	// volVals is the struct-of-arrays home of every volatile register's
	// value, in declaration order; volatileReg only carries the index.
	volVals []val.Value
	// gefs is the struct-of-arrays home of the per-pipe global exception
	// flags, indexed by pipeState.idx.
	gefs    []bool
	consts  map[string]V
	funcs   map[string]*ast.FuncDecl
	externs map[string]ExternFunc

	devices []func(m *Machine)
	// deviceWakes is parallel to devices: a non-nil entry predicts the
	// next cycle (>= its argument) at which the device may act, enabling
	// quiescent fast-forward; nil marks an unpredictable device.
	deviceWakes []func(cycle int) int
	traceW      io.Writer

	// Build-time identifier resolution: every Ident node in pipeline
	// code resolves once to a slot, a constant, or a volatile register,
	// so the hot path avoids string hashing.
	identBind  map[*ast.Ident]identBind
	memBind    map[*ast.MemRead]*memBinding
	memWBind   map[ast.Stmt]*memBinding // MemWrite / Lock / Abort nodes
	assignSlot map[ast.Stmt]int         // Assign/SpecCall target slots
	assignVol  map[ast.Stmt]*volatileReg
	fieldIdx   map[*ast.FieldAccess]int // sorted-field index, -1 when unknown
	scratch    firingScratch

	// Compiled execution plans (built once at New unless cfg.Interp).
	funcPlans map[string]*funcPlan

	// Hot-path arenas, all reused across firings so the steady-state
	// cycle loop allocates nothing: the single firing record, the typed
	// effect buffer, spawn argument storage, per-pipe spawn counters,
	// in-language function frames, extern argument scratch, the
	// instruction free list, and the retirement-args arena.
	fr         firing
	effBuf     []effectRec
	spawnArena []val.Value
	spawnCnt   []int
	spawnDirty []int
	frameArena []V
	frameTop   int
	extArgs    []val.Value
	instPool   []*inst
	retArgs    []val.Value
	snapBuf    []*inst
	descBuf    []*inst

	cycle     int
	nextIID   uint64
	alive     map[uint64]*inst
	retired   []Retirement
	firings   uint64 // total successful stage firings, for utilization stats
	idleFor   int    // consecutive cycles with no firing and no movement
	pulledAny bool   // an entry-queue pull happened last Step (state moved)

	faults   FaultInjector // from cfg.Faults; nil disables all hooks
	watchdog int           // idle-cycle limit; <= 0 disables the watchdog
	failed   error         // sticky *InternalError after a recovered panic

	// Bytecode engine state (engine == engVM): the design's shared
	// immutable Program and this machine's dispatch environment, wired to
	// the machine's own arenas and struct-of-arrays state (see vmexec.go).
	engine uint8
	vmProg *vm.Program
	vmEnv  vm.Env
}

// pushFrame reserves n slots on the function-frame arena and returns
// them zeroed. Frames are slices into a grow-only arena; growth leaves
// outstanding frames pointing at the old backing array, which stays
// valid and private to their callers.
func (m *Machine) pushFrame(n int) []V {
	need := m.frameTop + n
	if need > len(m.frameArena) {
		na := make([]V, need*2)
		copy(na, m.frameArena[:m.frameTop])
		m.frameArena = na
	}
	fr := m.frameArena[m.frameTop:need:need]
	m.frameTop = need
	for i := range fr {
		fr[i] = V{}
	}
	return fr
}

func (m *Machine) popFrame(n int) { m.frameTop -= n }

// volatileReg is a resolved volatile register: its declaration plus its
// index into the machine's struct-of-arrays value store (Machine.volVals).
type volatileReg struct {
	decl *ast.VolDecl
	idx  int
}

// identBind is a resolved identifier.
type identBind struct {
	kind int8 // 0 = var slot, 1 = constant, 2 = volatile
	slot int
	con  V
	vol  *volatileReg
}

// memBinding is a resolved memory reference.
type memBinding struct {
	decl  *ast.MemDecl
	lock  locks.Lock   // nil for unlocked memories
	plain *locks.Plain // nil for locked memories
}

// firingScratch is the per-machine reusable combinational/latched write
// buffer, stamped by epoch so it never needs clearing.
type firingScratch struct {
	local      []V
	localEpoch []uint32
	pend       []V
	pendEpoch  []uint32
	epoch      uint32
}

func (fs *firingScratch) grow(n int) {
	if n <= len(fs.local) {
		return
	}
	fs.local = make([]V, n)
	fs.localEpoch = make([]uint32, n)
	fs.pend = make([]V, n)
	fs.pendEpoch = make([]uint32, n)
}

type pipeState struct {
	m       *Machine
	idx     int // position in pipeOrder; indexes Machine.spawnCnt
	name    string
	decl    *ast.PipeDecl // translated declaration
	orig    *ast.PipeDecl // original (pre-translation) declaration
	res     *core.Result
	nodes   []*stageNode // processing order: downstream first
	body    []*stageNode
	commit  []*stageNode
	exc     []*stageNode
	entryQ  []*inst
	specTab *specTable // gef lives in Machine.gefs[idx] (SoA)

	// Variable storage layout: every name the checker recorded for this
	// pipeline gets a fixed slot; instruction state and firing scratch
	// are slot-indexed slices instead of string-keyed maps (hot path).
	slotOf map[string]int
	zeroes []V // per-slot zero of the checked type (undriven reads)
}

type stageKind int

const (
	kindBody stageKind = iota
	kindCommit
	kindExc
)

type stageNode struct {
	pipe  *pipeState
	kind  stageKind
	index int // index within its chain
	pos   int // index in pipeState.nodes (processing order); Observer coordinate
	gid   int // machine-global stage id (FaultInjector coordinate)
	stmts []ast.Stmt
	code  []cStmt    // compiled plan for stmts (nil under cfg.Interp)
	next  *stageNode // linear successor; nil means retire
	fork  *forkInfo  // non-nil on the translated final body stage
	cur   *inst
}

func (n *stageNode) label() string {
	switch n.kind {
	case kindBody:
		return fmt.Sprintf("%s.body%d", n.pipe.name, n.index)
	case kindCommit:
		return fmt.Sprintf("%s.commit%d", n.pipe.name, n.index)
	default:
		return fmt.Sprintf("%s.exc%d", n.pipe.name, n.index)
	}
}

type forkInfo struct {
	commitStage0 []ast.Stmt
	excStage0    []ast.Stmt
	commitCode   []cStmt // compiled commitStage0
	excCode      []cStmt // compiled excStage0
	commitNext   *stageNode
	excNext      *stageNode
}

type specStatus int

const (
	specPending specStatus = iota
	specVerified
	specInvalid
)

type specTable struct {
	nextHandle uint64
	entries    map[uint64]specStatus
}

func newSpecTable() *specTable {
	return &specTable{entries: make(map[uint64]specStatus)}
}

func (t *specTable) status(h uint64) specStatus {
	if s, ok := t.entries[h]; ok {
		return s
	}
	// A missing entry means it was resolved and reclaimed; treat as
	// verified (the instruction already became non-speculative).
	return specVerified
}

func (t *specTable) clear() {
	t.entries = make(map[uint64]specStatus)
	// Handles keep increasing so stale handle values never alias.
}

type pendingCall struct {
	resultVar string
	subPipe   string
}

type inst struct {
	iid    uint64
	pipe   *pipeState
	args   []val.Value
	vars   []slotVal // slot-indexed; see pipeState.slotOf
	parent uint64    // spawner's iid (0 for the root)

	lef   bool
	eargs []val.Value

	specHandle uint64
	spec       bool

	waiting *pendingCall

	// For sub-pipeline instructions: where to deliver the Return value.
	callerIID uint64
	resultVar string

	pooled bool // on the machine free list; guards double release
}

// New builds a machine for a checked, translated program.
func New(info *check.Info, trs map[string]*core.Result, cfg Config) (*Machine, error) {
	if cfg.RenamingExtra <= 0 {
		cfg.RenamingExtra = 16
	}
	if cfg.EntryCap <= 0 {
		cfg.EntryCap = 8
	}
	engName, err := ParseEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	if cfg.Engine == "" && cfg.Interp {
		engName = "interp" // legacy switch; Engine wins when set
	}
	var engine uint8
	switch engName {
	case "interp":
		engine = engInterp
	case "vm":
		engine = engVM
	default:
		engine = engClosure
	}
	cfg.Engine = engName
	cfg.Interp = engine == engInterp
	m := &Machine{
		info:    info,
		trs:     trs,
		cfg:     cfg,
		pipes:   make(map[string]*pipeState),
		mems:    make(map[string]locks.Lock),
		plains:  make(map[string]*locks.Plain),
		memDecl: make(map[string]*ast.MemDecl),
		vols:    make(map[string]*volatileReg),
		consts:  make(map[string]V),
		funcs:   make(map[string]*ast.FuncDecl),
		externs: cfg.Externs,
		alive:   make(map[uint64]*inst),
		nextIID: 1,
	}
	for name, c := range info.Consts {
		w := c.Width
		if w == 0 {
			w = 64
		}
		if c.IsBool {
			m.consts[name] = Scalar(val.Bool(c.Bool))
		} else {
			m.consts[name] = Scalar(val.New(c.Value, w))
		}
	}
	for _, f := range info.Prog.Funcs {
		m.funcs[f.Name] = f
	}
	for _, e := range info.Prog.Externs {
		if m.externs[e.Name] == nil {
			return nil, fmt.Errorf("sim: extern %q is not bound", e.Name)
		}
	}
	for _, md := range info.Prog.Mems {
		m.memDecl[md.Name] = md
		switch md.Lock {
		case ast.LockNone:
			m.plains[md.Name] = locks.NewPlain(md.Depth, md.Elem.Width)
		case ast.LockBasic:
			m.mems[md.Name] = locks.NewBasic(md.Depth, md.Elem.Width)
		case ast.LockBypass:
			m.mems[md.Name] = locks.NewBypass(md.Depth, md.Elem.Width)
		case ast.LockRenaming:
			m.mems[md.Name] = locks.NewRenaming(md.Depth, md.Elem.Width, cfg.RenamingExtra)
		}
	}
	for i, vd := range info.Prog.Vols {
		m.vols[vd.Name] = &volatileReg{decl: vd, idx: i}
		m.volVals = append(m.volVals, val.New(0, vd.Elem.Width))
	}
	for _, md := range info.Prog.Mems {
		if l, ok := m.mems[md.Name]; ok {
			m.memList = append(m.memList, l)
			m.memOrder = append(m.memOrder, md.Name)
		} else {
			m.plainList = append(m.plainList, m.plains[md.Name])
		}
	}
	for _, pd := range info.Prog.Pipes {
		tr := trs[pd.Name]
		if tr == nil {
			return nil, fmt.Errorf("sim: pipe %q has no translation result", pd.Name)
		}
		ps, err := m.buildPipe(pd, tr)
		if err != nil {
			return nil, err
		}
		ps.idx = len(m.pipeOrder)
		m.pipes[pd.Name] = ps
		m.pipeOrder = append(m.pipeOrder, pd.Name)
		m.pipeList = append(m.pipeList, ps)
	}
	m.gefs = make([]bool, len(m.pipeOrder))
	// Machine-global stage ids, in deterministic pipe/processing order:
	// the StallStage coordinate both executors share.
	gid := 0
	for _, name := range m.pipeOrder {
		for _, n := range m.pipes[name].nodes {
			n.gid = gid
			gid++
		}
	}
	m.faults = cfg.Faults
	m.watchdog = cfg.WatchdogCycles
	if m.watchdog == 0 {
		m.watchdog = defaultWatchdog
	}
	m.spawnCnt = make([]int, len(m.pipeOrder))
	m.fr.m = m
	m.engine = engine
	switch engine {
	case engClosure:
		m.compileAll()
	case engVM:
		m.buildVM()
	}
	return m, nil
}

// buildPipe constructs the stage graph from the translated declaration.
func (m *Machine) buildPipe(orig *ast.PipeDecl, tr *core.Result) (*pipeState, error) {
	ps := &pipeState{
		m:       m,
		name:    orig.Name,
		decl:    tr.Pipe,
		orig:    orig,
		res:     tr,
		specTab: newSpecTable(),
	}
	stages := ast.SplitStages(tr.Pipe.Body)
	for i, st := range stages {
		ps.body = append(ps.body, &stageNode{pipe: ps, kind: kindBody, index: i, stmts: st})
	}
	for i := 0; i < len(ps.body)-1; i++ {
		ps.body[i].next = ps.body[i+1]
	}

	if tr.Translated {
		lastStage := ps.body[len(ps.body)-1]
		guard, ok := lastStage.stmts[0].(*ast.GefGuard)
		if !ok || len(lastStage.stmts) != 1 {
			return nil, fmt.Errorf("sim: pipe %s: translated last stage is malformed", ps.name)
		}
		forkStmt, ok := guard.Body[len(guard.Body)-1].(*ast.LefBranch)
		if !ok {
			return nil, fmt.Errorf("sim: pipe %s: missing LefBranch in final stage", ps.name)
		}
		// The fork is handled structurally: execute a trimmed copy of the
		// guard (the shared translated AST must stay intact for other
		// backends such as the Verilog emitter and the cost model).
		trimmed := &ast.GefGuard{Body: guard.Body[:len(guard.Body)-1]}
		lastStage.stmts = []ast.Stmt{trimmed}

		commitStages := ast.SplitStages(forkStmt.Commit)
		for i := 1; i < len(commitStages); i++ {
			ps.commit = append(ps.commit, &stageNode{pipe: ps, kind: kindCommit, index: i, stmts: commitStages[i]})
		}
		for i := 0; i < len(ps.commit)-1; i++ {
			ps.commit[i].next = ps.commit[i+1]
		}
		excStages := ast.SplitStages(forkStmt.Except)
		for i := 1; i < len(excStages); i++ {
			ps.exc = append(ps.exc, &stageNode{pipe: ps, kind: kindExc, index: i, stmts: excStages[i]})
		}
		for i := 0; i < len(ps.exc)-1; i++ {
			ps.exc[i].next = ps.exc[i+1]
		}
		fi := &forkInfo{
			commitStage0: commitStages[0],
			excStage0:    excStages[0],
		}
		if len(ps.commit) > 0 {
			fi.commitNext = ps.commit[0]
		}
		if len(ps.exc) > 0 {
			fi.excNext = ps.exc[0]
		}
		lastStage.fork = fi
	}

	// Processing order: exception chain (downstream first), commit tail,
	// then body, all downstream first.
	for i := len(ps.exc) - 1; i >= 0; i-- {
		ps.nodes = append(ps.nodes, ps.exc[i])
	}
	for i := len(ps.commit) - 1; i >= 0; i-- {
		ps.nodes = append(ps.nodes, ps.commit[i])
	}
	for i := len(ps.body) - 1; i >= 0; i-- {
		ps.nodes = append(ps.nodes, ps.body[i])
	}
	for i, n := range ps.nodes {
		n.pos = i
	}

	m.buildSlots(ps)
	return ps, nil
}

// OnCycle registers a device hook invoked at the start of every cycle —
// the external writers of volatile memories (§3.6). A device registered
// this way is unpredictable, which disables quiescent fast-forward; use
// OnCycleWake when the device can predict its next active cycle.
func (m *Machine) OnCycle(fn func(m *Machine)) {
	m.devices = append(m.devices, fn)
	m.deviceWakes = append(m.deviceWakes, nil)
}

// OnCycleWake registers a device hook together with a wake predictor:
// wake(cycle) returns the earliest cycle >= cycle at which the device
// may act (observe or mutate machine state); before that cycle the hook
// must be a pure no-op. Machines whose devices all carry predictors are
// eligible for quiescent-cycle fast-forward under the vm engine: when a
// cycle moves nothing, Run skips ahead in O(1) to the next cycle that
// can — the next device wake, the watchdog trip, or the budget end —
// with externally identical behaviour (same cycle counts, same errors).
func (m *Machine) OnCycleWake(fn func(m *Machine), wake func(cycle int) int) {
	m.devices = append(m.devices, fn)
	m.deviceWakes = append(m.deviceWakes, wake)
}

// PipeTrace streams one line per cycle to w showing, for every pipeline,
// which instruction occupies each stage (by iid), plus queue depth and
// the gef flag — a textual waveform for debugging designs.
func (m *Machine) PipeTrace(w io.Writer) { m.traceW = w }

func (m *Machine) emitTrace() {
	if m.traceW == nil {
		return
	}
	fmt.Fprintf(m.traceW, "cycle %5d", m.cycle)
	for _, name := range m.pipeOrder {
		ps := m.pipes[name]
		fmt.Fprintf(m.traceW, " | %s:", name)
		for _, n := range ps.body {
			m.emitSlot(n)
		}
		if len(ps.commit) > 0 {
			fmt.Fprint(m.traceW, " /c")
			for _, n := range ps.commit {
				m.emitSlot(n)
			}
		}
		if len(ps.exc) > 0 {
			fmt.Fprint(m.traceW, " /x")
			for _, n := range ps.exc {
				m.emitSlot(n)
			}
		}
		if len(ps.entryQ) > 0 {
			fmt.Fprintf(m.traceW, " q=%d", len(ps.entryQ))
		}
		if m.gefs[ps.idx] {
			fmt.Fprint(m.traceW, " GEF")
		}
	}
	fmt.Fprintln(m.traceW)
}

func (m *Machine) emitSlot(n *stageNode) {
	if n.cur == nil {
		fmt.Fprint(m.traceW, " ---")
		return
	}
	mark := ""
	if n.cur.lef {
		mark = "!"
	}
	fmt.Fprintf(m.traceW, " %3d%s", n.cur.iid, mark)
}

// Start injects the initial instruction into a pipeline.
func (m *Machine) Start(pipe string, args ...val.Value) error {
	ps := m.pipes[pipe]
	if ps == nil {
		return fmt.Errorf("sim: unknown pipe %q", pipe)
	}
	if len(args) != len(ps.decl.Params) {
		return fmt.Errorf("sim: pipe %s takes %d args, got %d", pipe, len(ps.decl.Params), len(args))
	}
	m.enqueue(ps, args, 0, false, 0, 0, "")
	return nil
}

func (m *Machine) enqueue(ps *pipeState, args []val.Value, parent uint64, spec bool, handle uint64, callerIID uint64, resultVar string) *inst {
	in := m.poolGet()
	in.iid = m.nextIID
	in.pipe = ps
	in.parent = parent
	in.lef = false
	in.eargs = nil
	in.spec = spec
	in.specHandle = handle
	in.waiting = nil
	in.callerIID = callerIID
	in.resultVar = resultVar
	if cap(in.args) >= len(args) {
		in.args = in.args[:len(args)]
	} else {
		in.args = make([]val.Value, len(args))
	}
	for i, a := range args {
		in.args[i] = val.New(a.Uint(), ps.decl.Params[i].Type.BitWidth())
	}
	if n := len(ps.zeroes); cap(in.vars) >= n {
		in.vars = in.vars[:n]
		for i := range in.vars {
			in.vars[i] = slotVal{}
		}
	} else {
		in.vars = make([]slotVal, n)
	}
	m.nextIID++
	for i, p := range ps.decl.Params {
		in.vars[ps.slotOf[p.Name]] = slotVal{V: Scalar(in.args[i]), OK: true}
	}
	ps.entryQ = append(ps.entryQ, in)
	m.alive[in.iid] = in
	return in
}

// poolGet recycles a dead instruction record (or allocates the first
// time); poolPut returns one once nothing references it. Pooling keeps
// the steady-state cycle loop free of per-instruction allocations.
func (m *Machine) poolGet() *inst {
	if n := len(m.instPool); n > 0 {
		in := m.instPool[n-1]
		m.instPool = m.instPool[:n-1]
		in.pooled = false
		return in
	}
	return &inst{}
}

func (m *Machine) poolPut(in *inst) {
	if in.pooled {
		return
	}
	in.pooled = true
	in.waiting = nil
	in.eargs = nil
	m.instPool = append(m.instPool, in)
}

// Cycle reports the current cycle count.
func (m *Machine) Cycle() int { return m.cycle }

// Firings reports total successful stage firings (for utilization stats).
func (m *Machine) Firings() uint64 { return m.firings }

// Retired returns the retirement trace.
func (m *Machine) Retired() []Retirement { return m.retired }

// InFlight reports live instructions (in stages or entry queues).
func (m *Machine) InFlight() int { return len(m.alive) }

// MemPeek reads a memory's committed value.
func (m *Machine) MemPeek(mem string, addr uint64) val.Value {
	if p, ok := m.plains[mem]; ok {
		return p.Peek(addr)
	}
	return m.mems[mem].Peek(addr)
}

// MemPoke sets a memory's committed value (initialization).
func (m *Machine) MemPoke(mem string, addr uint64, v val.Value) {
	if p, ok := m.plains[mem]; ok {
		p.Poke(addr, v)
		return
	}
	m.mems[mem].Poke(addr, v)
}

// MemDepth reports the word count of a memory.
func (m *Machine) MemDepth(mem string) int {
	if p, ok := m.plains[mem]; ok {
		return p.Depth()
	}
	return m.mems[mem].Depth()
}

// VolPeek reads a volatile register.
func (m *Machine) VolPeek(name string) val.Value { return m.volVals[m.vols[name].idx] }

// VolPoke writes a volatile register, as an external device would.
func (m *Machine) VolPoke(name string, v val.Value) {
	reg := m.vols[name]
	m.volVals[reg.idx] = val.New(v.Uint(), reg.decl.Elem.Width)
}

// GefSet reports whether a pipeline is in exception-handling mode.
func (m *Machine) GefSet(pipe string) bool { return m.gefs[m.pipes[pipe].idx] }

// Step advances one cycle. It returns a *DeadlockError when the hang
// watchdog trips (no stage fired for WatchdogCycles consecutive cycles
// while instructions were in flight) and a *InternalError when a panic
// escapes the executor or a compiled stage plan; after an internal
// error the machine is poisoned and every later Step returns it again.
func (m *Machine) Step() (err error) {
	if m.failed != nil {
		return m.failed
	}
	// The firing record identifies the stage a recovered panic hit;
	// clear it so a pre-firing panic (device hook, entry pull) is not
	// attributed to last cycle's firing.
	m.fr.node, m.fr.in = nil, nil
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{Cycle: m.cycle, Panic: r, Stack: debug.Stack()}
			if m.fr.node != nil && m.fr.in != nil {
				ie.Stage = m.fr.node.label()
				ie.IID = m.fr.in.iid
			}
			// Capture the repro snapshot before poisoning the machine:
			// it rolls back the interrupted lock transactions, restoring
			// the cycle-boundary state the panic fired from.
			ie.Snapshot = m.reproSnapshot()
			m.failed = ie
			err = ie
		}
	}()
	return m.step()
}

func (m *Machine) step() error {
	for _, d := range m.devices {
		d(m)
	}
	m.pulledAny = false
	progressed := false
	for _, name := range m.pipeOrder {
		ps := m.pipes[name]
		for _, node := range ps.nodes {
			if node.cur == nil && node.kind == kindBody && node.index == 0 {
				m.pullEntry(ps, node)
			}
			if node.cur == nil {
				continue
			}
			if m.fire(node) {
				progressed = true
			}
		}
	}
	m.emitTrace()
	m.cycle++
	if progressed || len(m.alive) == 0 {
		m.idleFor = 0
		return nil
	}
	m.idleFor++
	if m.watchdog > 0 && m.idleFor > m.watchdog {
		return &DeadlockError{
			Cycle: m.cycle, Idle: m.idleFor,
			InFlight: len(m.alive), Diag: m.diagnose(),
		}
	}
	return nil
}

func (m *Machine) pullEntry(ps *pipeState, node *stageNode) {
	if len(ps.entryQ) == 0 {
		return
	}
	if m.faults != nil && m.faults.HoldEntry(m.cycle, ps.idx) {
		return
	}
	node.cur = ps.entryQ[0]
	copy(ps.entryQ, ps.entryQ[1:])
	ps.entryQ = ps.entryQ[:len(ps.entryQ)-1]
	m.pulledAny = true
	if obs := m.cfg.Observer; obs != nil {
		obs.EntryPulled(ps.name)
	}
}

// Run advances up to maxCycles cycles, stopping early when no work
// remains. It reports how many cycles elapsed. Exhausting the budget
// with instructions still in flight returns a *CycleBudgetError.
func (m *Machine) Run(maxCycles int) (int, error) {
	start := m.cycle
	for m.cycle-start < maxCycles {
		if len(m.alive) == 0 {
			return m.cycle - start, nil
		}
		m.quiesceSkip(maxCycles - (m.cycle - start))
		if m.cycle-start >= maxCycles {
			break
		}
		if err := m.Step(); err != nil {
			return m.cycle - start, err
		}
	}
	if len(m.alive) > 0 {
		return maxCycles, &CycleBudgetError{
			Budget: maxCycles, Cycle: m.cycle,
			InFlight: len(m.alive), Diag: m.diagnose(),
		}
	}
	return m.cycle - start, nil
}

// RunCtx is Run with cancellation: the context is checked at every
// cycle boundary, and cancellation or deadline expiry returns a
// *CanceledError carrying a snapshot of the machine at that boundary,
// so an interrupted run is always resumable (Machine.Restore). The
// machine itself is left healthy — stepping can continue in-process.
func (m *Machine) RunCtx(ctx context.Context, maxCycles int) (int, error) {
	start := m.cycle
	done := ctx.Done()
	for m.cycle-start < maxCycles {
		if len(m.alive) == 0 {
			return m.cycle - start, nil
		}
		select {
		case <-done:
			ce := &CanceledError{Cycle: m.cycle, Cause: ctx.Err()}
			ce.Snapshot, _ = m.SaveBytes()
			return m.cycle - start, ce
		default:
		}
		m.quiesceSkip(maxCycles - (m.cycle - start))
		if m.cycle-start >= maxCycles {
			break
		}
		if err := m.Step(); err != nil {
			return m.cycle - start, err
		}
	}
	if len(m.alive) > 0 {
		return maxCycles, &CycleBudgetError{
			Budget: maxCycles, Cycle: m.cycle,
			InFlight: len(m.alive), Diag: m.diagnose(),
		}
	}
	return m.cycle - start, nil
}

// quiesceSkip implements quiescent-cycle fast-forward for the vm
// engine. When the previous cycle moved nothing — no stage fired, no
// entry-queue pull, no death — the machine is at a fixed point: ticking
// changes nothing but the cycle counter until an external event (a
// device wake; fault hooks and observers disqualify a machine since
// they see every cycle). Instead of ticking, jump the cycle counter
// straight to the last provably-quiet cycle, bounded by the next device
// wake, the watchdog trip (which must be raised by a real Step so its
// diagnosis and cycle stamp match an unskipped run exactly), and the
// caller's remaining budget. Returns the number of cycles skipped.
func (m *Machine) quiesceSkip(budgetLeft int) int {
	if m.engine != engVM || m.failed != nil || m.pulledAny ||
		m.faults != nil || m.cfg.Observer != nil || m.traceW != nil {
		return 0
	}
	// Two provably-quiet shapes: an in-flight machine whose previous
	// cycle moved nothing (idleFor > 0), and a fully drained machine
	// with empty entry queues — nothing can happen until a device acts.
	drained := false
	if m.idleFor == 0 {
		if len(m.alive) != 0 {
			return 0
		}
		for _, name := range m.pipeOrder {
			if len(m.pipes[name].entryQ) != 0 {
				return 0
			}
		}
		drained = true
	}
	skip := budgetLeft
	if !drained && m.watchdog > 0 {
		if w := m.watchdog - m.idleFor; w < skip {
			skip = w
		}
	}
	for _, wake := range m.deviceWakes {
		if wake == nil {
			return 0 // unpredictable device: every cycle is potentially live
		}
		w := wake(m.cycle)
		if w < m.cycle {
			w = m.cycle
		}
		if d := w - m.cycle; d < skip {
			skip = d
		}
	}
	if skip <= 0 {
		return 0
	}
	m.cycle += skip
	if !drained {
		// Empty cycles reset the idle counter (the watchdog only counts
		// while work is in flight), so only the in-flight shape ages it.
		m.idleFor += skip
	}
	return skip
}

// Advance runs exactly n cycles, devices included, regardless of
// whether work is in flight — the driver for free-running,
// device-paced simulation and for lockstep batch execution. Unlike
// Run it does not stop when the machine drains (a predictable device
// may repopulate it later) and never reports a budget error: the
// horizon is the point, not a limit. Quiescent stretches — including
// fully drained ones — fast-forward in O(1) under the vm engine.
func (m *Machine) Advance(n int) error {
	target := m.cycle + n
	for m.cycle < target {
		m.quiesceSkip(target - m.cycle)
		if m.cycle >= target {
			return nil
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances until pred returns true, up to maxCycles.
func (m *Machine) RunUntil(maxCycles int, pred func(*Machine) bool) (int, error) {
	start := m.cycle
	for m.cycle-start < maxCycles {
		if pred(m) || len(m.alive) == 0 {
			break
		}
		if err := m.Step(); err != nil {
			return m.cycle - start, err
		}
	}
	return m.cycle - start, nil
}

// stateDump renders the bounded machine diagnosis (see errors.go); the
// old unbounded per-stage listing grew linearly with design size.
func (m *Machine) stateDump() string {
	d := m.diagnose()
	return d.String()
}

// squash kills an instruction and all its descendants (younger spawns),
// removing their lock reservations youngest-first.
func (m *Machine) squash(iid uint64) {
	victims := m.collectDescendants(iid)
	// Insertion sort, descending iid (victim sets are small and the
	// buffer is reused, so this stays allocation-free).
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j-1].iid < victims[j].iid; j-- {
			victims[j-1], victims[j] = victims[j], victims[j-1]
		}
	}
	for _, v := range victims {
		m.removeInst(v)
	}
}

func (m *Machine) collectDescendants(iid uint64) []*inst {
	out := m.descBuf[:0]
	for _, in := range m.alive {
		for cur := in; ; {
			if cur.iid == iid {
				out = append(out, in)
				break
			}
			p, ok := m.alive[cur.parent]
			if !ok {
				break
			}
			cur = p
		}
	}
	m.descBuf = out
	return out
}

// removeInst erases one instruction from stages, entry queues and locks.
func (m *Machine) removeInst(in *inst) {
	if obs := m.cfg.Observer; obs != nil {
		pos, qpos := -1, -1
		for _, n := range in.pipe.nodes {
			if n.cur == in {
				pos = n.pos
				break
			}
		}
		if pos < 0 {
			for i, q := range in.pipe.entryQ {
				if q == in {
					qpos = i
					break
				}
			}
		}
		// An instruction in neither place (already vacated by a died
		// firing, or waiting on a sub-pipeline) has no schedule footprint.
		if pos >= 0 || qpos >= 0 {
			obs.InstKilled(in.pipe.name, pos, qpos)
		}
	}
	for _, l := range m.mems {
		l.Squash(in.iid)
	}
	ps := in.pipe
	for _, n := range ps.nodes {
		if n.cur == in {
			n.cur = nil
		}
	}
	for i, q := range ps.entryQ {
		if q == in {
			ps.entryQ = append(ps.entryQ[:i], ps.entryQ[i+1:]...)
			break
		}
	}
	delete(m.alive, in.iid)
	m.poolPut(in)
}

func (m *Machine) retire(in *inst, node *stageNode) {
	if len(m.retired) < maxTraceDefault(m.cfg.MaxTrace) {
		// Copy args into the retirement arena: the instruction record is
		// pooled, so the trace cannot alias its slices. EArgs transfer
		// ownership (they are copy-on-write and never mutated again).
		off := len(m.retArgs)
		m.retArgs = append(m.retArgs, in.args...)
		args := m.retArgs[off:len(m.retArgs):len(m.retArgs)]
		m.retired = append(m.retired, Retirement{
			Pipe:        in.pipe.name,
			IID:         in.iid,
			Args:        args,
			Exceptional: in.lef,
			EArgs:       in.eargs,
			Cycle:       m.cycle,
		})
	}
	delete(m.alive, in.iid)
	m.poolPut(in)
	_ = node
}

func maxTraceDefault(n int) int {
	if n <= 0 {
		return 1 << 20
	}
	return n
}

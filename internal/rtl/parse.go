package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum   // literal; lexer resolves based literals to (value, width)
	tPunct // single/multi-char punctuation
)

type token struct {
	kind    tokKind
	text    string // ident name or punctuation
	val     uint64
	width   int // 0 for unsized
	line    int
	unsized bool
}

type lexer struct {
	src  string
	pos  int
	line int
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("rtl: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token, skipping whitespace and comments.
func (lx *lexer) next() (token, error) {
	src := lx.src
	for lx.pos < len(src) {
		c := src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(src) && src[lx.pos+1] == '/':
			for lx.pos < len(src) && src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(src) && src[lx.pos+1] == '*':
			end := strings.Index(src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, lx.errf("unterminated block comment")
			}
			lx.line += strings.Count(src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: lx.line}, nil

scan:
	c := src[lx.pos]
	start := lx.pos
	if isIdentStart(c) {
		for lx.pos < len(src) && isIdentPart(src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tIdent, text: src[start:lx.pos], line: lx.line}, nil
	}
	if isDigit(c) {
		for lx.pos < len(src) && isDigit(src[lx.pos]) {
			lx.pos++
		}
		digits := src[start:lx.pos]
		// Based literal: <width>'<base><digits>.
		if lx.pos < len(src) && src[lx.pos] == '\'' {
			width, err := strconv.Atoi(digits)
			if err != nil || width <= 0 || width > 64 {
				return token{}, lx.errf("bad literal width %q", digits)
			}
			lx.pos++
			if lx.pos >= len(src) {
				return token{}, lx.errf("truncated based literal")
			}
			base := src[lx.pos]
			lx.pos++
			vstart := lx.pos
			for lx.pos < len(src) && (isIdentPart(src[lx.pos])) {
				lx.pos++
			}
			body := strings.ReplaceAll(src[vstart:lx.pos], "_", "")
			var radix int
			switch base {
			case 'd', 'D':
				radix = 10
			case 'h', 'H':
				radix = 16
			case 'b', 'B':
				radix = 2
			case 'o', 'O':
				radix = 8
			default:
				return token{}, lx.errf("bad literal base %q", string(base))
			}
			v, err := strconv.ParseUint(body, radix, 64)
			if err != nil {
				return token{}, lx.errf("bad literal %q: %v", src[start:lx.pos], err)
			}
			return token{kind: tNum, val: v, width: width, line: lx.line}, nil
		}
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return token{}, lx.errf("bad number %q: %v", digits, err)
		}
		return token{kind: tNum, val: v, width: 64, unsized: true, line: lx.line}, nil
	}
	// Punctuation, longest match first.
	for _, p := range []string{">>>", "<<<", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>"} {
		if strings.HasPrefix(src[lx.pos:], p) {
			lx.pos += len(p)
			return token{kind: tPunct, text: p, line: lx.line}, nil
		}
	}
	lx.pos++
	return token{kind: tPunct, text: string(c), line: lx.line}, nil
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	lx   lexer
	tok  token
	peek *token
}

// Parse parses a Verilog source file in the emitter's subset.
func Parse(src string) (*File, error) {
	p := &parser{lx: lexer{src: src, line: 1}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.kind != tEOF {
		if !p.isIdent("module") {
			return nil, p.errf("expected 'module', got %q", p.tok.text)
		}
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		f.Modules = append(f.Modules, m)
	}
	if len(f.Modules) == 0 {
		return nil, fmt.Errorf("rtl: no modules in source")
	}
	return f, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("rtl: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) isIdent(name string) bool {
	return p.tok.kind == tIdent && p.tok.text == name
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tPunct && p.tok.text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, got %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isIdent(kw) {
		return p.errf("expected %q, got %q", kw, p.tok.text)
	}
	return p.advance()
}

// parseRange parses an optional "[hi:lo]" packed range, returning the
// width (hi-lo+1) or 1 when absent.
func (p *parser) parseRange() (int, error) {
	if !p.isPunct("[") {
		return 1, nil
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.tok.kind != tNum {
		return 0, p.errf("expected constant range bound")
	}
	hi := int(p.tok.val)
	if err := p.advance(); err != nil {
		return 0, err
	}
	if err := p.expectPunct(":"); err != nil {
		return 0, err
	}
	if p.tok.kind != tNum {
		return 0, p.errf("expected constant range bound")
	}
	lo := int(p.tok.val)
	if err := p.advance(); err != nil {
		return 0, err
	}
	if err := p.expectPunct("]"); err != nil {
		return 0, err
	}
	if lo != 0 || hi < 0 {
		return 0, p.errf("unsupported range [%d:%d]", hi, lo)
	}
	return hi - lo + 1, nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.advance(); err != nil { // consume 'module'
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name}
	if p.isPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for !p.isPunct(")") {
			var dir PortDir
			switch {
			case p.isIdent("input"):
				dir = Input
			case p.isIdent("output"):
				dir = Output
			default:
				return nil, p.errf("expected port direction, got %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isIdent("wire") || p.isIdent("reg") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			w, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.Ports = append(m.Ports, Port{Name: pname, Dir: dir, Width: w})
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil { // ')'
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	for !p.isIdent("endmodule") {
		switch {
		case p.isIdent("reg"), p.isIdent("wire"):
			isReg := p.tok.text == "reg"
			if err := p.advance(); err != nil {
				return nil, err
			}
			w, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			dname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			depth := 0
			if p.isPunct("[") { // unpacked array: [0:depth-1]
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != tNum || p.tok.val != 0 {
					return nil, p.errf("array range must start at 0")
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				if p.tok.kind != tNum {
					return nil, p.errf("expected constant array bound")
				}
				depth = int(p.tok.val) + 1
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
			}
			m.Decls = append(m.Decls, Decl{Name: dname, Width: w, Depth: depth, IsReg: isReg})
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isIdent("assign"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			lhs, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Assigns = append(m.Assigns, ContAssign{LHS: lhs, RHS: rhs})
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isIdent("always"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("@"); err != nil {
				return nil, err
			}
			seq := false
			if p.isPunct("*") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else {
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if p.isPunct("*") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				} else {
					if err := p.expectKeyword("posedge"); err != nil {
						return nil, err
					}
					if _, err := p.expectIdent(); err != nil { // clock name
						return nil, err
					}
					seq = true
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			stmts, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			b := &Block{Stmts: stmts}
			if seq {
				m.Seqs = append(m.Seqs, b)
			} else {
				m.Combs = append(m.Combs, b)
			}
		default:
			return nil, p.errf("unexpected %q in module body", p.tok.text)
		}
	}
	return m, p.advance() // consume 'endmodule'
}

// parseStmtOrBlock parses either a begin/end block or a single statement.
func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.isIdent("begin") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Optional block label "begin : name".
		if p.isPunct(":") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
		}
		var stmts []Stmt
		for !p.isIdent("end") {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
		}
		return stmts, p.advance() // consume 'end'
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.isPunct(";"):
		return nil, p.advance()
	case p.isIdent("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.isIdent("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			els, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.isPunct("{"):
		// Concat lvalue: {a, b, c} = extern(...);
		if err := p.advance(); err != nil {
			return nil, err
		}
		var targets []LValue
		for {
			lv, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			targets = append(targets, lv)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		nb, err := p.parseAssignOp()
		if err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Targets: targets, RHS: rhs, NonBlocking: nb}, nil
	case p.tok.kind == tIdent:
		lv, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		nb, err := p.parseAssignOp()
		if err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Targets: []LValue{lv}, RHS: rhs, NonBlocking: nb}, nil
	}
	return nil, p.errf("unexpected %q at statement start", p.tok.text)
}

func (p *parser) parseLValue() (LValue, error) {
	name, err := p.expectIdent()
	if err != nil {
		return LValue{}, err
	}
	lv := LValue{Name: name}
	if p.isPunct("[") {
		if err := p.advance(); err != nil {
			return LValue{}, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return LValue{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return LValue{}, err
		}
		lv.Index = idx
	}
	return lv, nil
}

// parseAssignOp consumes "=" or "<=", reporting whether the assignment is
// nonblocking. Inside statements "<=" always means nonblocking assignment
// (the emitter parenthesizes comparisons).
func (p *parser) parseAssignOp() (bool, error) {
	switch {
	case p.isPunct("="):
		return false, p.advance()
	case p.isPunct("<="):
		return true, p.advance()
	}
	return false, p.errf("expected assignment operator, got %q", p.tok.text)
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// Binary precedence, loosest first: || && | ^ & ==/!= relational shift
// additive multiplicative.
var precTable = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tPunct {
			return left, nil
		}
		prec, ok := precTable[p.tok.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tPunct {
		switch p.tok.text {
		case "!", "~", "-":
			op := p.tok.text[0]
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tNum:
		n := &Num{Val: p.tok.val, Width: p.tok.width, Unsized: p.tok.unsized}
		return n, p.advance()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case p.isPunct("{"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Replication {n{x}} or concatenation {a, b, ...}.
		if p.tok.kind == tNum {
			save := p.tok
			pk, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			if pk.kind == tPunct && pk.text == "{" {
				if err := p.advance(); err != nil { // count
					return nil, err
				}
				if err := p.advance(); err != nil { // inner '{'
					return nil, err
				}
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("}"); err != nil {
					return nil, err
				}
				if err := p.expectPunct("}"); err != nil {
					return nil, err
				}
				return &Repl{N: int(save.val), X: x}, nil
			}
		}
		var parts []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return &Concat{Parts: parts}, nil
	case p.tok.kind == tIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if name == "$signed" {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Signed{X: x}, p.expectPunct(")")
		}
		if p.isPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			return &CallExpr{Name: name, Args: args}, p.advance()
		}
		if p.isPunct("[") {
			// name[expr] or name[hi:lo]; disambiguate by scanning for ':'
			// after a constant first bound.
			if err := p.advance(); err != nil {
				return nil, err
			}
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.isPunct(":") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				hiN, ok := first.(*Num)
				if !ok {
					return nil, p.errf("part select bounds must be constant")
				}
				if p.tok.kind != tNum {
					return nil, p.errf("part select bounds must be constant")
				}
				lo := int(p.tok.val)
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				return &PartSel{Name: name, Hi: int(hiN.Val), Lo: lo}, nil
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &Index{Name: name, I: first}, nil
		}
		return &Ref{Name: name}, nil
	}
	return nil, p.errf("unexpected %q in expression", p.tok.text)
}

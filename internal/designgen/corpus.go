package designgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteGoFuzzCorpus writes n generated design sources into dir in Go's
// file-based fuzz corpus format (one `go test fuzz v1` file per design,
// named gen-<seed>). Pointed at a package's testdata/fuzz/<Target>
// directory it seeds that target with realistic whole-pipeline inputs —
// far deeper into the grammar than the hand-written f.Add seeds — and,
// because Go replays the seed corpus during ordinary `go test` runs,
// pins the parser/checker against panics on all of them in tier-1.
func WriteGoFuzzCorpus(dir string, n int, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s := seed + uint64(i)
		src := Generate(s).Source()
		body := "go test fuzz v1\nstring(" + strconv.Quote(src) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("gen-%d", s))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

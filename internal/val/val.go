// Package val implements the sized bit-vector values that flow through
// XPDL pipelines. Every wire, register and memory word in the language is a
// Value: an unsigned bit pattern with an explicit width between 1 and 64
// bits. All arithmetic wraps modulo 2^width, exactly as the corresponding
// hardware datapath would.
package val

import (
	"fmt"
	"strings"
)

// MaxWidth is the widest value the kernel supports. Sixty-four bits covers
// RV32IM (the widest intermediate is the 64-bit product of MULH*).
const MaxWidth = 64

// Value is a fixed-width bit vector. The zero Value is a 1-bit zero, so
// uninitialized wires read as hardware zeros rather than crashing.
type Value struct {
	bits  uint64
	width int
}

// New builds a Value of the given width, truncating bits to fit.
// It panics if width is out of range; widths come from the type checker,
// so an invalid width is a compiler bug, not a user error.
func New(bits uint64, width int) Value {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("val: invalid width %d", width))
	}
	return Value{bits: bits & mask(width), width: width}
}

// Bool builds a 1-bit Value from a Go bool.
func Bool(b bool) Value {
	if b {
		return Value{bits: 1, width: 1}
	}
	return Value{bits: 0, width: 1}
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Width reports the declared width in bits. The zero Value has width 1.
func (v Value) Width() int {
	if v.width == 0 {
		return 1
	}
	return v.width
}

// Uint returns the raw bit pattern, zero-extended to 64 bits.
func (v Value) Uint() uint64 { return v.bits }

// Int returns the bit pattern reinterpreted as a signed two's-complement
// integer of the value's width.
func (v Value) Int() int64 {
	w := v.Width()
	if w == 64 {
		return int64(v.bits)
	}
	sign := uint64(1) << uint(w-1)
	if v.bits&sign != 0 {
		return int64(v.bits | ^mask(w))
	}
	return int64(v.bits)
}

// IsTrue reports whether any bit is set; it is how conditions are tested.
func (v Value) IsTrue() bool { return v.bits != 0 }

// IsZero reports whether all bits are clear.
func (v Value) IsZero() bool { return v.bits == 0 }

// Bit returns bit i (0 = LSB) as 0 or 1. Out-of-range bits read as zero.
func (v Value) Bit(i int) uint64 {
	if i < 0 || i >= v.Width() {
		return 0
	}
	return (v.bits >> uint(i)) & 1
}

// Eq reports bit-pattern equality after zero-extending both sides; the
// language compares values numerically, not structurally.
func (v Value) Eq(o Value) bool { return v.bits == o.bits }

// String renders as width'hHEX, the conventional HDL literal form.
func (v Value) String() string {
	return fmt.Sprintf("%d'h%x", v.Width(), v.bits)
}

// BinString renders the value as a binary string, MSB first, for traces.
func (v Value) BinString() string {
	var b strings.Builder
	for i := v.Width() - 1; i >= 0; i-- {
		if v.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// --- Arithmetic. Results take the width of the left operand, matching the
// language rule that mixed-width arithmetic adopts the destination width.

// Add returns v + o mod 2^width.
func (v Value) Add(o Value) Value { return New(v.bits+o.bits, v.Width()) }

// Sub returns v - o mod 2^width.
func (v Value) Sub(o Value) Value { return New(v.bits-o.bits, v.Width()) }

// Mul returns the low width bits of v * o.
func (v Value) Mul(o Value) Value { return New(v.bits*o.bits, v.Width()) }

// MulFull returns the full 2w-bit product (capped at 64 bits), used by the
// RISC-V MULH family.
func (v Value) MulFull(o Value) Value {
	w := v.Width() * 2
	if w > MaxWidth {
		w = MaxWidth
	}
	return New(v.bits*o.bits, w)
}

// DivU returns the unsigned quotient; division by zero yields all ones,
// per the RISC-V M-extension convention.
func (v Value) DivU(o Value) Value {
	if o.bits == 0 {
		return New(mask(v.Width()), v.Width())
	}
	return New(v.bits/o.bits, v.Width())
}

// RemU returns the unsigned remainder; remainder by zero yields the
// dividend, per the RISC-V M-extension convention.
func (v Value) RemU(o Value) Value {
	if o.bits == 0 {
		return v
	}
	return New(v.bits%o.bits, v.Width())
}

// DivS returns the signed quotient with RISC-V edge cases: x/0 = -1 and
// MinInt / -1 = MinInt (overflow wraps).
func (v Value) DivS(o Value) Value {
	w := v.Width()
	if o.bits == 0 {
		return New(mask(w), w)
	}
	a, b := v.Int(), o.Int()
	if b == -1 && a == minInt(w) {
		return New(uint64(a), w)
	}
	return New(uint64(a/b), w)
}

// RemS returns the signed remainder with RISC-V edge cases: x%0 = x and
// MinInt % -1 = 0.
func (v Value) RemS(o Value) Value {
	w := v.Width()
	if o.bits == 0 {
		return v
	}
	a, b := v.Int(), o.Int()
	if b == -1 && a == minInt(w) {
		return New(0, w)
	}
	return New(uint64(a%b), w)
}

func minInt(width int) int64 {
	return -(int64(1) << uint(width-1))
}

// --- Bitwise.

// And returns the bitwise AND.
func (v Value) And(o Value) Value { return New(v.bits&o.bits, v.Width()) }

// Or returns the bitwise OR.
func (v Value) Or(o Value) Value { return New(v.bits|o.bits, v.Width()) }

// Xor returns the bitwise XOR.
func (v Value) Xor(o Value) Value { return New(v.bits^o.bits, v.Width()) }

// Not returns the bitwise complement within the value's width.
func (v Value) Not() Value { return New(^v.bits, v.Width()) }

// Neg returns the two's-complement negation.
func (v Value) Neg() Value { return New(-v.bits, v.Width()) }

// Shl shifts left by o (amount taken mod width, as RISC-V shifters do).
func (v Value) Shl(o Value) Value {
	sh := o.bits % uint64(v.Width())
	return New(v.bits<<sh, v.Width())
}

// ShrU shifts right logically by o mod width.
func (v Value) ShrU(o Value) Value {
	sh := o.bits % uint64(v.Width())
	return New(v.bits>>sh, v.Width())
}

// ShrS shifts right arithmetically by o mod width.
func (v Value) ShrS(o Value) Value {
	sh := o.bits % uint64(v.Width())
	return New(uint64(v.Int()>>sh), v.Width())
}

// --- Comparisons. All return 1-bit values.

// EqV compares bit patterns for equality.
func (v Value) EqV(o Value) Value { return Bool(v.bits == o.bits) }

// NeV compares bit patterns for inequality.
func (v Value) NeV(o Value) Value { return Bool(v.bits != o.bits) }

// LtU is unsigned less-than.
func (v Value) LtU(o Value) Value { return Bool(v.bits < o.bits) }

// LeU is unsigned less-or-equal.
func (v Value) LeU(o Value) Value { return Bool(v.bits <= o.bits) }

// GtU is unsigned greater-than.
func (v Value) GtU(o Value) Value { return Bool(v.bits > o.bits) }

// GeU is unsigned greater-or-equal.
func (v Value) GeU(o Value) Value { return Bool(v.bits >= o.bits) }

// LtS is signed less-than.
func (v Value) LtS(o Value) Value { return Bool(v.Int() < o.Int()) }

// LeS is signed less-or-equal.
func (v Value) LeS(o Value) Value { return Bool(v.Int() <= o.Int()) }

// GtS is signed greater-than.
func (v Value) GtS(o Value) Value { return Bool(v.Int() > o.Int()) }

// GeS is signed greater-or-equal.
func (v Value) GeS(o Value) Value { return Bool(v.Int() >= o.Int()) }

// --- Structural operations.

// Slice extracts bits hi..lo inclusive, producing a value of width
// hi-lo+1. It panics on an inverted or out-of-range slice; slice bounds are
// compile-time constants validated by the checker.
func (v Value) Slice(hi, lo int) Value {
	if lo < 0 || hi < lo || hi >= v.Width() {
		panic(fmt.Sprintf("val: slice [%d:%d] of %d-bit value", hi, lo, v.Width()))
	}
	return New(v.bits>>uint(lo), hi-lo+1)
}

// Cat concatenates values MSB-first: Cat(a, b) places a above b.
// It panics if the combined width exceeds MaxWidth.
func Cat(parts ...Value) Value {
	total := 0
	var bits uint64
	for _, p := range parts {
		total += p.Width()
		if total > MaxWidth {
			panic("val: concatenation wider than 64 bits")
		}
		bits = bits<<uint(p.Width()) | p.bits
	}
	if total == 0 {
		panic("val: empty concatenation")
	}
	return New(bits, total)
}

// ZeroExt widens (or truncates) to the target width with zero fill.
func (v Value) ZeroExt(width int) Value { return New(v.bits, width) }

// SignExt widens to the target width replicating the sign bit; narrowing
// truncates.
func (v Value) SignExt(width int) Value {
	if width <= v.Width() {
		return New(v.bits, width)
	}
	return New(uint64(v.Int()), width)
}

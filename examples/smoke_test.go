// Package examples holds runnable demonstration programs. The test in
// this file compiles and executes every example as a subprocess, so a
// refactor that breaks an example's build — or changes simulator
// behavior out from under its narrative — fails `go test ./...` instead
// of waiting for a reader to notice.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Each example must exit 0 and print its load-bearing conclusion: the
// line a reader is told to look for in the example's doc comment.
var wantOutput = map[string]string{
	"exploration": "exception support is free in CPI",
	"interrupts":  "every interrupt was precise",
	"quickstart":  "retired exceptionally",
	"syscalls":    "mret",
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples rebuild the module; skipped with -short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		want, ok := wantOutput[name]
		if !ok {
			t.Errorf("example %s has no expected-output entry; add one to wantOutput", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("output of %s lost its conclusion %q:\n%s", name, want, out)
			}
		})
	}
	// The inverse check: every expectation still has an example.
	for name := range wantOutput {
		if _, err := os.Stat(filepath.Join(".", name)); err != nil {
			t.Errorf("wantOutput lists %s but examples/%s does not exist", name, name)
		}
	}
}

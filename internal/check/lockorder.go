package check

// Static lock-order deadlock detection.
//
// Lock queues serialize reservations per memory entry, so two pipelines
// that interleave reservations of the same two entries in opposite orders
// can each end up blocked on a lock the other holds (the dynamic watchdog
// in internal/sim detects exactly this at runtime). This pass finds the
// hazard statically: it replays each pipeline's lock statements in textual
// order, records a "holds A, then blocks on B" edge for every lock held
// across a blocking operation, and reports every cycle in the resulting
// lock-order graph as a W-LOCK-ORDER warning with the full witness chain.
//
// Lock targets are canonicalized into alias nodes: a compile-time-constant
// index is its own node ("rf[#3]"), so constant-indexed entries of the
// same memory can participate in a cycle, while dynamic indices and
// whole-memory locks collapse conservatively to "rf[*]".

import (
	"fmt"
	"sort"
	"strings"

	"xpdl/internal/diag"
	"xpdl/internal/pdl/ast"
	"xpdl/internal/pdl/token"
)

// lockEdge is one "holds from, then blocks on to" observation, with the
// source positions that witness it. Each (from, to) pair keeps one
// witness per pipeline.
type lockEdge struct {
	from, to string
	pipe     string
	heldKey  string
	heldPos  token.Pos
	acqKey   string
	acqPos   token.Pos
}

// maxLockCycles bounds the number of reported cycles; beyond it the graph
// is degenerate enough that more reports add noise, not information.
const maxLockCycles = 8

func (c *checker) lockOrderPass() {
	edges := make(map[[2]string][]lockEdge)
	var edgeOrder [][2]string

	type held struct {
		key  string
		node string
		pos  token.Pos
	}
	for _, p := range c.prog.Pipes {
		var hs []held
		inExcept := false
		for _, ev := range c.lockSeq[p.Name] {
			if ev.reg == regExcept && !inExcept {
				// Rollback aborts body reservations before the except
				// block runs, so its held-set starts empty.
				hs, inExcept = nil, true
			}
			switch ev.op {
			case ast.LockReserve:
				hs = append(hs, held{ev.key, ev.node, ev.pos})
			case ast.LockAcquire, ast.LockBlock:
				for _, h := range hs {
					if h.node == ev.node {
						continue
					}
					k := [2]string{h.node, ev.node}
					seen := false
					for _, e := range edges[k] {
						if e.pipe == p.Name {
							seen = true
							break
						}
					}
					if seen {
						continue
					}
					if len(edges[k]) == 0 {
						edgeOrder = append(edgeOrder, k)
					}
					edges[k] = append(edges[k], lockEdge{
						from: h.node, to: ev.node, pipe: p.Name,
						heldKey: h.key, heldPos: h.pos,
						acqKey: ev.key, acqPos: ev.pos,
					})
				}
				if ev.op == ast.LockAcquire {
					hs = append(hs, held{ev.key, ev.node, ev.pos})
				}
			case ast.LockRelease:
				for i, h := range hs {
					if h.key == ev.key {
						hs = append(hs[:i], hs[i+1:]...)
						break
					}
				}
			}
		}
	}

	// Cycles are searched over exact alias nodes. A cycle mixing a
	// constant index with a dynamic index of the same memory lands on
	// different nodes and is missed (false negative); the flip side is
	// that disjoint constant entries never produce false positives.
	adj := make(map[string][]string)
	for _, k := range edgeOrder {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for from := range adj {
		sort.Strings(adj[from])
	}

	for _, cyc := range findCycles(adj, maxLockCycles) {
		witness, pipes := pickWitnesses(cyc, edges)
		// A cycle witnessed by a single in-order pipeline is benign:
		// its instructions reserve every lock in program order, and
		// reservation queues grant ownership in reservation order, so an
		// older instruction never waits on a younger one. A deadlock
		// needs two pipelines interleaving reservations in opposite
		// orders (the scenario internal/sim's watchdog traps at runtime).
		if pipes < 2 {
			continue
		}
		var related []diag.Related
		for _, e := range witness {
			related = append(related,
				diag.Related{Pos: e.heldPos, Message: fmt.Sprintf("pipe %s holds %s (reserved here) ...", e.pipe, e.heldKey)},
				diag.Related{Pos: e.acqPos, Message: fmt.Sprintf("... while blocking on %s here", e.acqKey)},
			)
		}
		c.diags.Add(diag.Diagnostic{
			Pos: witness[0].acqPos, Severity: diag.Warning, Code: "W-LOCK-ORDER",
			Message: fmt.Sprintf("potential deadlock: lock-order cycle %s across %d pipelines",
				strings.Join(append(append([]string{}, cyc...), cyc[0]), " -> "), pipes),
			Notes:   []string{"acquire locks in one global order (or release before re-acquiring) to break the cycle"},
			Related: related,
		})
	}
}

// pickWitnesses chooses one witness edge per cycle step for display
// (greedy: prefer a pipeline not yet shown) and counts the distinct
// pipelines able to witness any edge of the cycle — two pipelines that
// each witness every edge can still deadlock against each other, so the
// danger test is the union, not the displayed assignment.
func pickWitnesses(cyc []string, edges map[[2]string][]lockEdge) ([]lockEdge, int) {
	chosen := make([]lockEdge, 0, len(cyc))
	used := map[string]bool{}
	union := map[string]bool{}
	for i := range cyc {
		cands := edges[[2]string{cyc[i], cyc[(i+1)%len(cyc)]}]
		best := cands[0]
		for _, e := range cands {
			union[e.pipe] = true
			if !used[best.pipe] {
				continue
			}
			if !used[e.pipe] {
				best = e
			}
		}
		used[best.pipe] = true
		chosen = append(chosen, best)
	}
	return chosen, len(union)
}

// findCycles enumerates up to max simple cycles of the graph, each
// rotated so its lexicographically smallest node comes first and reported
// once. Enumeration is deterministic: nodes and successors are visited in
// sorted order.
func findCycles(adj map[string][]string, max int) [][]string {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles [][]string
	var path []string
	onPath := map[string]bool{}

	var dfs func(start, at string)
	dfs = func(start, at string) {
		if len(cycles) >= max {
			return
		}
		path = append(path, at)
		onPath[at] = true
		for _, next := range adj[at] {
			if next == start {
				cycles = append(cycles, append([]string(nil), path...))
				if len(cycles) >= max {
					break
				}
				continue
			}
			// Restricting the walk to nodes after start reports each
			// cycle exactly once, at its smallest node.
			if next > start && !onPath[next] {
				dfs(start, next)
			}
		}
		onPath[at] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n, n)
	}
	return cycles
}

package bveq

import (
	"fmt"
	"testing"

	"xpdl/internal/sim"
)

// fakeTarget is an enumeration-only stub (Build/Check are never called
// by Enumerate).
type fakeTarget struct {
	alpha, exc int
	intr       bool
}

func (f *fakeTarget) Name() string { return "fake" }
func (f *fakeTarget) Alphabet() []Inst {
	out := make([]Inst, f.alpha)
	for i := range out {
		out[i] = Inst{Word: uint32(0x100 + i), Asm: fmt.Sprintf("a%d", i)}
	}
	return out
}
func (f *fakeTarget) ExcLetters() []Inst {
	out := make([]Inst, f.exc)
	for i := range out {
		out[i] = Inst{Word: uint32(0x200 + i), Asm: fmt.Sprintf("x%d", i)}
	}
	return out
}
func (f *fakeTarget) IntrCapable() bool { return f.intr }
func (f *fakeTarget) Neutral() uint32   { return 0x100 }
func (f *fakeTarget) Build([]uint32, int, string) (*sim.Machine, error) {
	panic("fakeTarget.Build: not used by Enumerate")
}
func (f *fakeTarget) Check([]uint32, int, *sim.Machine, error) *Mismatch {
	panic("fakeTarget.Check: not used by Enumerate")
}

// TestEnumerationCardinality: the enumerator must emit exactly the
// closed-form number of (program × exception-site × interrupt-cycle)
// points at K=2 — the completeness oracle of the whole gate.
func TestEnumerationCardinality(t *testing.T) {
	cases := []struct {
		alpha, exc int
		intr       bool
	}{
		{alpha: 3, exc: 2, intr: true},
		{alpha: 3, exc: 2, intr: false},
		{alpha: 4, exc: 0, intr: false},
		{alpha: 2, exc: 3, intr: true},
		{alpha: 1, exc: 1, intr: true},
	}
	for _, tc := range cases {
		b := Bounds{K: 2, Window: 5}
		ft := &fakeTarget{alpha: tc.alpha, exc: tc.exc, intr: tc.intr}

		// Closed form at K=2:
		//   programs = A + X            (k=1: pure + one exc letter)
		//            + A² + 2·X·A       (k=2: pure + site×letter×fill)
		wantProgs := tc.alpha + tc.exc + tc.alpha*tc.alpha + 2*tc.exc*tc.alpha
		wantPoints := wantProgs
		if tc.intr {
			wantPoints = wantProgs * (1 + b.Window)
		}

		seen := map[string]bool{}
		progs, points := Enumerate(ft, b, func(pd PointDesc) bool {
			key := fmt.Sprintf("%v@%d", pd.Prog, pd.Intr)
			if seen[key] {
				t.Fatalf("duplicate point %s", key)
			}
			seen[key] = true
			if pd.Index != len(seen)-1 {
				t.Fatalf("point index %d out of order (want %d)", pd.Index, len(seen)-1)
			}
			return true
		})
		if progs != wantProgs || points != wantPoints {
			t.Errorf("A=%d X=%d intr=%v: enumerated %d programs / %d points, closed form %d / %d",
				tc.alpha, tc.exc, tc.intr, progs, points, wantProgs, wantPoints)
		}
		if len(seen) != points {
			t.Errorf("emitted %d distinct points, counter says %d", len(seen), points)
		}
		cp, cpts := Cardinality(b, tc.alpha, tc.exc, tc.intr)
		if cp != wantProgs || cpts != wantPoints {
			t.Errorf("Cardinality(A=%d, X=%d, intr=%v) = %d/%d, want %d/%d",
				tc.alpha, tc.exc, tc.intr, cp, cpts, wantProgs, wantPoints)
		}
	}
}

// TestEnumerationEarlyStop: fn returning false halts the walk.
func TestEnumerationEarlyStop(t *testing.T) {
	ft := &fakeTarget{alpha: 3, exc: 1, intr: true}
	n := 0
	_, points := Enumerate(ft, Bounds{K: 2, Window: 4}, func(pd PointDesc) bool {
		n++
		return n < 7
	})
	if n != 7 || points != 7 {
		t.Fatalf("walk visited %d points (reported %d), want stop at 7", n, points)
	}
}

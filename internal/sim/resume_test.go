// Resume-equivalence differential suite: the proof that snapshots are
// faithful. For every variant × workload × chaos seed × executor, a
// run that is snapshotted at a pseudo-random mid-run cycle, restored
// into a freshly built machine and continued must be cycle-exactly
// identical to the uninterrupted run — same retirement trace (iids and
// cycle numbers included), same registers, memory, CSRs and counters.
// The snapshot itself must also round-trip save→restore→save to the
// exact same bytes, and be byte-identical across all three executors
// (machine state is executor-independent by construction).
package sim_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"xpdl/internal/designs"
	"xpdl/internal/fault"
	"xpdl/internal/sim"
	"xpdl/internal/workloads"
)

// resumeBuild constructs a booted, loaded processor with a seeded
// injector (and storm, when the variant is interrupt-capable), exactly
// like chaosRun but without running it.
func resumeBuild(t *testing.T, v designs.Variant, w workloads.Workload, seed uint64, engine string) *designs.Processor {
	t.Helper()
	cfg := sim.Config{Engine: engine}
	var inj *fault.Injector
	if seed != 0 {
		inj = fault.New(fault.Default(seed))
		cfg.Faults = inj
	}
	p, err := designs.BuildCfg(v, cfg)
	if err != nil {
		t.Fatalf("build %s: %v", v, err)
	}
	prog, err := w.Assemble()
	if err != nil {
		t.Fatalf("assemble %s: %v", w.Name, err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Boot(); err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		p.AttachStorm(inj)
	}
	return p
}

// splitmix is a tiny stateless PRNG draw used to pick the snapshot
// cycle deterministically per (seed, run length).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// resumeWorkloads spans the three kernel shapes the acceptance matrix
// names: pure ALU recursion, memory streaming, and a table-driven loop.
func resumeWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	want := map[string]bool{"fib": true, "memcpy": true, "crc": true}
	var out []workloads.Workload
	for _, w := range workloads.All() {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("workload set changed: found %d of %d", len(out), len(want))
	}
	return out
}

func TestResumeEquivalence(t *testing.T) {
	vs := designs.Variants()
	ws := resumeWorkloads(t)
	seeds := chaosSeeds
	if testing.Short() {
		vs = []designs.Variant{designs.Base, designs.All}
		ws = ws[:2]
		seeds = seeds[:2]
	}
	for _, v := range vs {
		for _, w := range ws {
			t.Run(v.String()+"/"+w.Name, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					var refSnap []byte
					for ei, engine := range engines {
						snap := resumeCell(t, v, w, seed, engine)
						// The machine snapshot is executor-independent:
						// all executors at the same cycle of the same
						// seeded run serialize to identical bytes.
						if ei == 0 {
							refSnap = snap
						} else if !bytes.Equal(refSnap, snap) {
							t.Fatalf("seed %#x: %s and %s snapshots differ", seed, engines[0], engine)
						}
					}
				}
			})
		}
	}
}

// resumeCell runs one matrix cell and returns the mid-run snapshot it
// verified (for the cross-executor byte comparison).
func resumeCell(t *testing.T, v designs.Variant, w workloads.Workload, seed uint64, engine string) []byte {
	t.Helper()
	budget := w.MaxSteps * 32

	// Uninterrupted reference run.
	ref := resumeBuild(t, v, w, seed, engine)
	n, err := ref.Run(budget)
	if err != nil {
		t.Fatalf("seed %#x %s: reference run: %v", seed, engine, err)
	}
	if n < 2 {
		t.Fatalf("seed %#x: run too short to snapshot (%d cycles)", seed, n)
	}

	// Fresh identical machine, stopped at a seed-determined mid cycle.
	k := 1 + int(splitmix(seed^uint64(n))%uint64(n-1))
	mid := resumeBuild(t, v, w, seed, engine)
	if _, err := mid.Run(k); err != nil {
		var cb *sim.CycleBudgetError
		if !errors.As(err, &cb) {
			t.Fatalf("seed %#x %s: run to cycle %d: %v", seed, engine, k, err)
		}
	}
	snap1, err := mid.M.SaveBytes()
	if err != nil {
		t.Fatalf("seed %#x: save at cycle %d: %v", seed, k, err)
	}

	// Restore into a freshly built machine; save→restore→save must be
	// byte-identical.
	res := resumeBuild(t, v, w, seed, engine)
	if err := res.M.Restore(bytes.NewReader(snap1)); err != nil {
		t.Fatalf("seed %#x: restore at cycle %d: %v", seed, k, err)
	}
	snap2, err := res.M.SaveBytes()
	if err != nil {
		t.Fatalf("seed %#x: re-save: %v", seed, err)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("seed %#x %s: save/restore/save differs at cycle %d (%d vs %d bytes)",
			seed, engine, k, len(snap1), len(snap2))
	}

	// Continue the restored machine to completion: it must be
	// cycle-exactly the reference run.
	rem, err := res.M.Run(budget - k)
	if err != nil {
		t.Fatalf("seed %#x %s: resumed run from cycle %d: %v", seed, engine, k, err)
	}
	if k+rem != n {
		t.Fatalf("seed %#x %s: resumed run took %d cycles total, straight run %d",
			seed, engine, k+rem, n)
	}
	compareMachines(t, "resumed", "reference", res, ref, k+rem, n)
	return snap1
}

// TestRestoreRejectsOtherDesign pins the structural fingerprint: a
// snapshot from one variant must not restore into another.
func TestRestoreRejectsOtherDesign(t *testing.T) {
	w := resumeWorkloads(t)[0]
	src := resumeBuild(t, designs.All, w, 0, "closure")
	if _, err := src.Run(50); err != nil {
		var cb *sim.CycleBudgetError
		if !errors.As(err, &cb) {
			t.Fatal(err)
		}
	}
	snap, err := src.M.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	dst := resumeBuild(t, designs.Base, w, 0, "closure")
	err = dst.M.Restore(bytes.NewReader(snap))
	if err == nil || !strings.Contains(err.Error(), "design mismatch") {
		t.Fatalf("cross-variant restore: got %v, want design mismatch", err)
	}
}

// TestRestoreRejectsOtherSeed pins the fault-identity check: a chaos
// snapshot only restores into a machine that will replay the same
// fault decisions.
func TestRestoreRejectsOtherSeed(t *testing.T) {
	w := resumeWorkloads(t)[0]
	src := resumeBuild(t, designs.Base, w, 0xC0FFEE01, "closure")
	if _, err := src.Run(50); err != nil {
		var cb *sim.CycleBudgetError
		if !errors.As(err, &cb) {
			t.Fatal(err)
		}
	}
	snap, err := src.M.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	other := resumeBuild(t, designs.Base, w, 0xC0FFEE02, "closure")
	err = other.M.Restore(bytes.NewReader(snap))
	if err == nil || !strings.Contains(err.Error(), "fault seed") {
		t.Fatalf("cross-seed restore: got %v, want fault seed mismatch", err)
	}
	unfaulted := resumeBuild(t, designs.Base, w, 0, "closure")
	err = unfaulted.M.Restore(bytes.NewReader(snap))
	if err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("faulted snapshot into unfaulted machine: got %v, want fault injection mismatch", err)
	}
}

// contextWithCycleLimit returns a context canceled from inside the
// machine's own cycle loop once it reaches the given cycle — a
// deterministic stand-in for an operator's Ctrl-C or deadline.
func contextWithCycleLimit(p *designs.Processor, limit int) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	p.M.OnCycle(func(m *sim.Machine) {
		if m.Cycle() >= limit {
			cancel()
		}
	})
	return ctx, cancel
}

// TestRunCtxCancelLeavesResumableSnapshot proves the cancellation
// contract: a canceled run yields a *sim.CanceledError whose snapshot,
// restored into a fresh machine, completes identically to an
// uninterrupted run.
func TestRunCtxCancelLeavesResumableSnapshot(t *testing.T) {
	w := resumeWorkloads(t)[0]
	seed := uint64(0xC0FFEE03)
	budget := w.MaxSteps * 32

	ref := resumeBuild(t, designs.All, w, seed, "closure")
	n, err := ref.Run(budget)
	if err != nil {
		t.Fatal(err)
	}

	run := resumeBuild(t, designs.All, w, seed, "closure")
	ctx, cancel := contextWithCycleLimit(run, n/2)
	defer cancel()
	_, err = run.RunCtx(ctx, budget)
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled run: got %v, want *sim.CanceledError", err)
	}
	if ce.Snapshot == nil {
		t.Fatal("CanceledError carries no snapshot")
	}

	res := resumeBuild(t, designs.All, w, seed, "closure")
	if err := res.M.Restore(bytes.NewReader(ce.Snapshot)); err != nil {
		t.Fatalf("restore canceled snapshot: %v", err)
	}
	rem, err := res.M.Run(budget)
	if err != nil {
		t.Fatalf("resume canceled run: %v", err)
	}
	compareMachines(t, "reference", "resumed", ref, res, n, ce.Cycle+rem)
}

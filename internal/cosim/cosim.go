// Package cosim executes the emitted Verilog of a processor variant in
// lockstep with the pipeline simulator and diffs architectural state
// every cycle. It is the closing link in the verification chain: the
// checker proves the design obeys the sequential specification, the
// simulator demonstrates it cycle-by-cycle, the golden model pins the
// one-instruction-at-a-time (OIAT) meaning, and cosimulation proves the
// *emitted hardware* is the same machine — with zero cycle offset.
//
// The harness replays the simulator's schedule into the RTL: a
// sim.Observer records which stage nodes fired, which instructions were
// squashed and when the entry queue was popped; those events become the
// module's fire/kill/q_kill/entry_pop strobes. The RTL is therefore not
// free-running — scheduling (stalls, arbitration, fault injection) is
// the simulator's job — but every datapath computation, forwarding
// decision, exception fork, staged-write commit and CSR update is
// recomputed by the Verilog semantics and compared against the
// simulator's result at every clock edge.
package cosim

import (
	"context"
	"fmt"

	"xpdl"
	"xpdl/internal/asm"
	"xpdl/internal/designs"
	"xpdl/internal/fault"
	"xpdl/internal/golden"
	"xpdl/internal/pdl/ast"
	"xpdl/internal/riscv"
	"xpdl/internal/rtl"
	"xpdl/internal/sim"
	"xpdl/internal/synth"
	"xpdl/internal/val"
)

// Options configures one cosimulation run.
type Options struct {
	Variant designs.Variant
	Program *asm.Program
	// Design, when non-nil, cosimulates an arbitrary compiled design
	// instead of a named processor variant (the design-space fuzzer's
	// path). Externs supplies its extern implementations and IMem its
	// raw instruction image; Variant/Program/Firmware are ignored and
	// the golden OIAT diff (RV32-specific) is skipped.
	Design  *xpdl.Design
	Externs map[string]sim.ExternFunc
	IMem    []uint32
	// StormSchedule pulses value 1 into the StormVol volatile at the
	// listed cycles — the generic-design interrupt source (requires
	// Design). StormVol defaults to "mip" for variant runs.
	StormSchedule []int
	StormVol      string
	// MaxCycles bounds the run (default 200000).
	MaxCycles int
	// Interp selects the simulator's AST-interpreter executor.
	Interp bool
	// ChaosSeed, when nonzero, plugs the deterministic fault injector
	// into the simulator (timing faults only — the RTL replays the
	// perturbed schedule through its strobe inputs).
	ChaosSeed uint64
	// Storm lets the chaos injector pulse interrupt lines (requires an
	// interrupt-capable variant); implies SkipGolden.
	Storm bool
	// StormPct overrides the injector's per-cycle storm probability
	// (percent). A program that leaves interrupts enabled livelocks
	// under the default 10%/cycle rate — the handler never outruns the
	// next pulse — so interrupt-enabled storm runs want 1-2%.
	StormPct int
	// InterruptAt, when positive, pulses InterruptBit once at that cycle.
	InterruptAt  int
	InterruptBit uint32
	// DMemEvery throttles the full data-memory diff to every N cycles
	// (default 64); the final-state diff always covers all of it.
	DMemEvery int
	// Firmware presets CSR volatiles before boot (the Trap variant has
	// no csrw instruction; devices initialize it from outside). Applied
	// to the simulator, the RTL and the golden reference alike.
	Firmware map[string]uint32
	// Verilog overrides the emitted module text (used by the
	// bug-seeding tests to prove the harness catches emitter defects).
	Verilog string
	// SkipGolden suppresses the final OIAT diff (set automatically for
	// storm runs, whose interrupt timing the golden model cannot replay).
	SkipGolden bool
	// Ctx, when non-nil, cancels the run at the next cycle boundary; Run
	// then returns a *CanceledError carrying a resumable checkpoint.
	Ctx context.Context
	// CheckpointEvery, when positive, calls Checkpoint with a combined
	// checkpoint every N cycles.
	CheckpointEvery int
	Checkpoint      func([]byte) error
	// Resume, when non-nil, restores a combined checkpoint taken under
	// identical Options instead of booting from reset.
	Resume []byte
}

// Result summarises a successful run.
type Result struct {
	Cycles  int
	Retired int
}

// DivergenceError reports the first cycle at which the RTL and the
// simulator disagreed about architectural state.
type DivergenceError struct {
	Cycle  int
	Signal string
	Got    uint64 // RTL value
	Want   uint64 // simulator value
	Detail string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("cosim: cycle %d: %s: rtl %#x, sim %#x (%s)",
		e.Cycle, e.Signal, e.Got, e.Want, e.Detail)
}

// recorder captures the simulator's schedule events for one cycle.
type recorder struct {
	fire, kill, qkill uint64
	pop               bool
	qmirror           []int
	err               error
}

var _ sim.Observer = (*recorder)(nil)

func (r *recorder) reset(mirror []int) {
	r.fire, r.kill, r.qkill = 0, 0, 0
	r.pop = false
	r.qmirror = append(r.qmirror[:0], mirror...)
}

func (r *recorder) StageFired(pipe string, pos int) { r.fire |= 1 << uint(pos) }

func (r *recorder) EntryPulled(pipe string) {
	r.pop = true
	if len(r.qmirror) > 0 {
		r.qmirror = r.qmirror[1:]
	}
}

func (r *recorder) InstKilled(pipe string, pos, queuePos int) {
	if pos >= 0 {
		r.kill |= 1 << uint(pos)
		return
	}
	if queuePos < 0 || queuePos >= len(r.qmirror) {
		r.err = fmt.Errorf("cosim: queue kill at position %d outside the cycle-start queue (len %d)",
			queuePos, len(r.qmirror))
		return
	}
	if orig := r.qmirror[queuePos]; orig >= 0 {
		r.qkill |= 1 << uint(orig)
	} else {
		r.err = fmt.Errorf("cosim: same-cycle push+kill of a queue entry is outside the modeled subset")
	}
	r.qmirror = append(r.qmirror[:queuePos], r.qmirror[queuePos+1:]...)
}

// RTLFuncs adapts the simulator's extern implementations to the rtl
// evaluator's calling convention. Record results come back from the
// simulator name-sorted; the Verilog concat-lvalue binds them in field
// declaration order, so the adapter reorders via the extern signature.
func RTLFuncs(externs []*ast.ExternDecl, impls map[string]sim.ExternFunc) (map[string]*rtl.Func, error) {
	funcs := make(map[string]*rtl.Func, len(externs))
	for _, e := range externs {
		impl, ok := impls[e.Name]
		if !ok {
			return nil, fmt.Errorf("cosim: extern %s has no implementation", e.Name)
		}
		params := make([]int, len(e.Params))
		for i, prm := range e.Params {
			params[i] = prm.Type.BitWidth()
		}
		var results []int
		var fields []string
		if e.Result.Kind == ast.TRecord {
			for _, f := range e.Result.Fields {
				results = append(results, f.Type.BitWidth())
				fields = append(fields, f.Name)
			}
		} else if w := e.Result.BitWidth(); w > 0 {
			results = append(results, w)
		}
		name, impl2, fields2, results2 := e.Name, impl, fields, results
		funcs[e.Name] = &rtl.Func{
			Params:  params,
			Results: results,
			Fn: func(args []val.Value) []val.Value {
				v := impl2(args)
				if len(fields2) > 0 {
					out := make([]val.Value, len(fields2))
					for i, f := range fields2 {
						fv, ok := v.Field(f)
						if !ok {
							panic(fmt.Sprintf("cosim: extern %s: missing record field %s", name, f))
						}
						out[i] = fv
					}
					return out
				}
				if len(results2) == 0 {
					return nil
				}
				return []val.Value{v.Val}
			},
		}
	}
	return funcs, nil
}

// harness holds both machines and the plan tying their coordinates.
type harness struct {
	opts    Options
	p       *designs.Processor
	model   *rtl.Model
	plan    *synth.RTLPlan
	rec     recorder
	mirror  []int
	slotIdx map[string]int // checker variable -> simulator slot index
	numEArg int

	// device write captured by the OnCycle hook, replayed onto the
	// RTL's <devVol>_dev_* ports the same cycle.
	devVol string
	devWE  bool
	devDin uint64

	prevRetired int
}

// Run cosimulates one program on one variant and reports the first
// divergence as a *DivergenceError.
func Run(opts Options) (*Result, error) {
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 200000
	}
	if opts.DMemEvery == 0 {
		opts.DMemEvery = 64
	}
	if opts.Storm || opts.Design != nil {
		opts.SkipGolden = true
	}

	h := &harness{opts: opts}
	h.devVol = opts.StormVol
	if h.devVol == "" {
		h.devVol = "mip"
	}

	// --- simulator side -------------------------------------------------
	cfg := sim.Config{Interp: opts.Interp, Observer: &h.rec}
	var inj *fault.Injector
	if opts.ChaosSeed != 0 {
		fc := fault.Default(opts.ChaosSeed)
		if !opts.Storm {
			fc.StormPct = 0
		} else if opts.StormPct != 0 {
			fc.StormPct = opts.StormPct
		}
		inj = fault.New(fc)
		cfg.Faults = inj
	}
	var p *designs.Processor
	var err error
	if opts.Design != nil {
		cfg.Externs = opts.Externs
		if cfg.Externs == nil {
			cfg.Externs = map[string]sim.ExternFunc{}
		}
		m, merr := opts.Design.NewMachine(cfg)
		if merr != nil {
			return nil, merr
		}
		p = &designs.Processor{Design: opts.Design, M: m}
		for i, w := range opts.IMem {
			m.MemPoke("imem", uint64(i), val.New(uint64(w), 32))
		}
	} else {
		p, err = designs.BuildCfg(opts.Variant, cfg)
		if err != nil {
			return nil, err
		}
		if (opts.Storm || opts.InterruptAt > 0) && !p.InterruptCapable() {
			return nil, fmt.Errorf("cosim: variant %s cannot take interrupts", opts.Variant)
		}
		if err := p.Load(opts.Program); err != nil {
			return nil, err
		}
		for name, v := range opts.Firmware {
			p.SetCSR(name, v)
		}
	}
	h.p = p

	// --- RTL side -------------------------------------------------------
	text, plans := synth.VerilogPlans(p.Design.Info, p.Design.Translations)
	plan, ok := plans["cpu"]
	if !ok {
		return nil, fmt.Errorf("cosim: cpu pipe of %s fell out of the synthesizable subset", opts.Variant)
	}
	h.plan = plan
	if opts.Verilog != "" {
		text = opts.Verilog
	}
	f, err := rtl.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("cosim: parse emitted verilog: %w", err)
	}
	mod := f.Module(plan.Module)
	if mod == nil {
		return nil, fmt.Errorf("cosim: module %s not emitted", plan.Module)
	}
	impls := designs.Externs()
	if opts.Design != nil {
		impls = opts.Externs
	}
	funcs, err := RTLFuncs(p.Design.Info.Prog.Externs, impls)
	if err != nil {
		return nil, err
	}
	model, err := rtl.Elaborate(mod, funcs)
	if err != nil {
		return nil, fmt.Errorf("cosim: elaborate: %w", err)
	}
	h.model = model

	h.slotIdx = make(map[string]int)
	for _, s := range plan.Slots {
		if s.Var == "" {
			continue
		}
		if idx, ok := p.M.SlotIndex("cpu", s.Var); ok {
			h.slotIdx[s.Var] = idx
		} else {
			return nil, fmt.Errorf("cosim: plan slot %s has no simulator slot", s.Var)
		}
	}
	h.numEArg = plan.NumEArgs

	// Interrupt sources run as a simulator device at cycle start; the
	// hook also captures the merged mip value for the RTL's device port.
	if len(opts.StormSchedule) > 0 {
		sched := opts.StormSchedule
		next := 0
		p.M.OnCycle(func(m *sim.Machine) {
			c := m.Cycle()
			for next < len(sched) && sched[next] < c {
				next++
			}
			if next < len(sched) && sched[next] == c {
				next++
				m.VolPoke(h.devVol, val.New(1, m.VolPeek(h.devVol).Width()))
				h.devWE = true
				h.devDin = m.VolPeek(h.devVol).Uint()
			}
		})
	}
	if opts.Storm || opts.InterruptAt > 0 {
		p.M.OnCycle(func(m *sim.Machine) {
			raised := false
			if opts.Storm && inj != nil {
				if line, ok := inj.Storm(m.Cycle(), len(stormBits)); ok {
					p.RaiseInterrupt(stormBits[line])
					raised = true
				}
			}
			if opts.InterruptAt > 0 && m.Cycle() == opts.InterruptAt {
				p.RaiseInterrupt(opts.InterruptBit)
				raised = true
			}
			if raised {
				h.devWE = true
				h.devDin = uint64(p.CSR("mip"))
			}
		})
	}

	cycles := 0
	if opts.Resume != nil {
		if cycles, err = h.restoreCheckpoint(opts.Resume); err != nil {
			return nil, err
		}
	} else {
		if err := h.resetAndLoad(); err != nil {
			return nil, err
		}
		if err := p.Boot(); err != nil {
			return nil, err
		}
		// The boot instruction is already in the simulator's entry queue;
		// on the RTL it arrives through the start_valid strobe during the
		// first cycle, so it has no cycle-start queue index yet.
		h.mirror = []int{-1}
	}

	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}
	for p.M.InFlight() > 0 {
		if cycles >= opts.MaxCycles {
			return nil, fmt.Errorf("cosim: cycle budget %d exhausted with %d in flight",
				opts.MaxCycles, p.M.InFlight())
		}
		select {
		case <-done:
			ce := &CanceledError{Cycle: cycles, Cause: opts.Ctx.Err()}
			ce.Snapshot, _ = h.checkpoint(cycles)
			return nil, ce
		default:
		}
		if err := h.cycleContained(cycles == 0, cycles); err != nil {
			return nil, err
		}
		cycles++
		if opts.CheckpointEvery > 0 && opts.Checkpoint != nil && cycles%opts.CheckpointEvery == 0 {
			b, err := h.checkpoint(cycles)
			if err != nil {
				return nil, fmt.Errorf("cosim: checkpoint at cycle %d: %w", cycles, err)
			}
			if err := opts.Checkpoint(b); err != nil {
				return nil, fmt.Errorf("cosim: checkpoint at cycle %d: %w", cycles, err)
			}
		}
	}

	if err := h.finalDiff(); err != nil {
		return nil, err
	}
	if !opts.SkipGolden {
		if err := h.goldenDiff(); err != nil {
			return nil, err
		}
	}
	return &Result{Cycles: cycles, Retired: len(p.Retired())}, nil
}

// stormBits mirrors designs.AttachStorm's line order, so a chaos seed
// perturbs the cosimulated machine exactly as it does the chaos suite.
var stormBits = [...]uint32{riscv.MIPMSIP, riscv.MIPMTIP, riscv.MIPMEIP}

// resetAndLoad pulses reset and initialises the RTL memories to match
// the loaded simulator.
func (h *harness) resetAndLoad() error {
	m := h.model
	if err := m.Poke("rst", val.New(1, 1)); err != nil {
		return err
	}
	if err := m.Settle(); err != nil {
		return fmt.Errorf("cosim: settle under reset: %w", err)
	}
	if err := m.Clock(); err != nil {
		return fmt.Errorf("cosim: reset clock: %w", err)
	}
	if err := m.Poke("rst", val.New(0, 1)); err != nil {
		return err
	}
	load := func(mem synth.PlanMem) error {
		for i := 0; i < mem.Depth; i++ {
			v := h.p.M.MemPeek(mem.Name, uint64(i))
			if err := m.PokeArray(mem.Name+"_arr", i, val.New(v.Uint(), mem.Width)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, mem := range h.plan.Mems {
		if err := load(mem); err != nil {
			return err
		}
	}
	for _, mem := range h.plan.PlainMems {
		if err := load(mem); err != nil {
			return err
		}
	}
	// Volatiles boot to their simulator values (normally zero).
	for _, v := range h.plan.Vols {
		sv := h.p.M.VolPeek(v.Name)
		if err := m.Poke(v.Name+"_dev_we", val.New(1, 1)); err != nil {
			return err
		}
		if err := m.Poke(v.Name+"_dev_din", val.New(sv.Uint(), v.Width)); err != nil {
			return err
		}
	}
	if len(h.plan.Vols) > 0 {
		if err := m.Settle(); err != nil {
			return err
		}
		if err := m.Clock(); err != nil {
			return err
		}
		for _, v := range h.plan.Vols {
			if err := m.Poke(v.Name+"_dev_we", val.New(0, 1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// cycle advances both machines one clock and compares them.
func (h *harness) cycle(boot bool) error {
	p, m := h.p, h.model
	simCycle := p.M.Cycle()

	h.rec.reset(h.mirror)
	h.devWE = false
	if err := p.M.Step(); err != nil {
		return fmt.Errorf("cosim: simulator: %w", err)
	}
	if h.rec.err != nil {
		return h.rec.err
	}

	// Replay the observed schedule into the module inputs.
	n := len(h.plan.Nodes)
	pokes := []struct {
		name string
		v    val.Value
	}{
		{"fire", val.New(h.rec.fire, n)},
		{"kill", val.New(h.rec.kill, n)},
		{"q_kill", val.New(h.rec.qkill, h.plan.EntryCap)},
		{"entry_pop", val.New(b2u(h.rec.pop), 1)},
		{"start_valid", val.New(b2u(boot), 1)},
	}
	for _, pk := range pokes {
		if err := m.Poke(pk.name, pk.v); err != nil {
			return err
		}
	}
	if boot {
		for _, prm := range h.plan.Params {
			if err := m.Poke("start_"+prm.Name, val.New(0, prm.Width)); err != nil {
				return err
			}
		}
	}
	for _, v := range h.plan.Vols {
		we, din := uint64(0), uint64(0)
		if v.Name == h.devVol && h.devWE {
			we, din = 1, h.devDin
		}
		if err := m.Poke(v.Name+"_dev_we", val.New(we, 1)); err != nil {
			return err
		}
		if err := m.Poke(v.Name+"_dev_din", val.New(din, v.Width)); err != nil {
			return err
		}
	}

	if err := m.Settle(); err != nil {
		return fmt.Errorf("cosim: cycle %d: settle: %w", simCycle, err)
	}
	if err := h.compareRetire(simCycle); err != nil {
		return err
	}
	if err := m.Clock(); err != nil {
		return fmt.Errorf("cosim: cycle %d: clock: %w", simCycle, err)
	}
	if err := h.compareState(simCycle); err != nil {
		return err
	}

	// Post-edge, the RTL queue was verified identical to the simulator's,
	// so next cycle's kill mask indexes it directly.
	h.mirror = h.mirror[:0]
	for i := 0; i < p.M.QueueLen("cpu"); i++ {
		h.mirror = append(h.mirror, i)
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (h *harness) peek(name string) (uint64, error) {
	v, err := h.model.Peek(name)
	if err != nil {
		return 0, fmt.Errorf("cosim: %w", err)
	}
	return v.Uint(), nil
}

func (h *harness) check(cycle int, signal string, got, want uint64, detail string) error {
	if got != want {
		return &DivergenceError{Cycle: cycle, Signal: signal, Got: got, Want: want, Detail: detail}
	}
	return nil
}

// compareRetire checks the retirement observation ports against the
// simulator's retirement trace delta for this cycle. Two instructions
// can retire in the same cycle (one on the commit tail, one on the
// except tail); the ports then expose the mux-priority one, so the
// harness matches on the exceptional flag.
func (h *harness) compareRetire(cycle int) error {
	all := h.p.M.Retired()
	delta := all[h.prevRetired:]
	h.prevRetired = len(all)

	rv, err := h.peek("retire_v")
	if err != nil {
		return err
	}
	if len(delta) == 0 {
		return h.check(cycle, "retire_v", rv, 0, "no simulator retirement this cycle")
	}
	if rv != 1 {
		return h.check(cycle, "retire_v", rv, 1, "simulator retired this cycle")
	}
	rexc, err := h.peek("retire_exc")
	if err != nil {
		return err
	}
	var match *sim.Retirement
	for i := range delta {
		if b2u(delta[i].Exceptional) == rexc {
			match = &delta[i]
			break
		}
	}
	if match == nil {
		return h.check(cycle, "retire_exc", rexc, b2u(delta[0].Exceptional), "exceptional flag")
	}
	for i, prm := range h.plan.Params {
		got, err := h.peek("retire_" + prm.Name)
		if err != nil {
			return err
		}
		if i < len(match.Args) {
			if err := h.check(cycle, "retire_"+prm.Name, got, match.Args[i].Uint(), "retired argument"); err != nil {
				return err
			}
		}
	}
	if match.Exceptional {
		for i := 0; i < h.numEArg && i < len(match.EArgs); i++ {
			if match.EArgs[i].Width() == 0 {
				continue
			}
			got, err := h.peek(fmt.Sprintf("retire_earg%d", i))
			if err != nil {
				return err
			}
			if err := h.check(cycle, fmt.Sprintf("retire_earg%d", i), got, match.EArgs[i].Uint(), "except argument"); err != nil {
				return err
			}
		}
	}
	return nil
}

// compareState diffs committed architectural state after the clock edge.
func (h *harness) compareState(cycle int) error {
	p, plan := h.p, h.plan
	msim := p.M

	for _, nd := range plan.Nodes {
		occ := msim.StageOccupied("cpu", nd.Pos)
		v, err := h.peek(nd.Prefix + "_valid")
		if err != nil {
			return err
		}
		if err := h.check(cycle, nd.Prefix+"_valid", v, b2u(occ), msim.NodeLabel("cpu", nd.Pos)); err != nil {
			return err
		}
		if !occ {
			continue
		}
		if plan.Translated {
			lef, err := h.peek(nd.Prefix + "_lef")
			if err != nil {
				return err
			}
			if err := h.check(cycle, nd.Prefix+"_lef", lef, b2u(msim.StageLEF("cpu", nd.Pos)), "local exception flag"); err != nil {
				return err
			}
		}
		for _, s := range plan.Slots {
			if s.IsHandle || s.IsEArg {
				continue
			}
			sv, ok := msim.StageSlot("cpu", nd.Pos, h.slotIdx[s.Var])
			if !ok {
				continue // undriven: architecturally unobservable
			}
			var want val.Value
			if s.Field != "" {
				fv, ok := sv.Field(s.Field)
				if !ok {
					continue
				}
				want = fv
			} else {
				if sv.IsRecord() {
					continue
				}
				want = sv.Val
			}
			got, err := h.peek(nd.Prefix + "_r_" + s.Name)
			if err != nil {
				return err
			}
			if err := h.check(cycle, nd.Prefix+"_r_"+s.Name, got, want.Uint(), "stage slot"); err != nil {
				return err
			}
		}
		eargs := msim.StageEArgs("cpu", nd.Pos)
		for i := 0; i < h.numEArg && i < len(eargs); i++ {
			if eargs[i].Width() == 0 {
				continue
			}
			got, err := h.peek(fmt.Sprintf("%s_r_earg%d", nd.Prefix, i))
			if err != nil {
				return err
			}
			if err := h.check(cycle, fmt.Sprintf("%s_r_earg%d", nd.Prefix, i), got, eargs[i].Uint(), "except argument slot"); err != nil {
				return err
			}
		}
	}

	if plan.Translated {
		gef, err := h.peek("gef_q")
		if err != nil {
			return err
		}
		if err := h.check(cycle, "gef_q", gef, b2u(msim.GefSet("cpu")), "global exception flag"); err != nil {
			return err
		}
	}
	for _, vd := range plan.Vols {
		got, err := h.peek(vd.Name + "_q")
		if err != nil {
			return err
		}
		if err := h.check(cycle, vd.Name+"_q", got, msim.VolPeek(vd.Name).Uint(), "volatile register"); err != nil {
			return err
		}
	}

	qlen, err := h.peek("q_len")
	if err != nil {
		return err
	}
	if err := h.check(cycle, "q_len", qlen, uint64(msim.QueueLen("cpu")), "entry queue depth"); err != nil {
		return err
	}
	for i := 0; i < msim.QueueLen("cpu"); i++ {
		for j, prm := range plan.Params {
			gv, err := h.model.PeekArray("qv_"+prm.Name, i)
			if err != nil {
				return fmt.Errorf("cosim: %w", err)
			}
			if err := h.check(cycle, fmt.Sprintf("qv_%s[%d]", prm.Name, i), gv.Uint(),
				msim.QueueArg("cpu", i, j).Uint(), "queued argument"); err != nil {
				return err
			}
		}
	}

	for _, mem := range plan.Mems {
		if mem.Depth > 64 && cycle%h.opts.DMemEvery != 0 {
			continue
		}
		if err := h.compareMem(cycle, mem); err != nil {
			return err
		}
	}
	return nil
}

func (h *harness) compareMem(cycle int, mem synth.PlanMem) error {
	for i := 0; i < mem.Depth; i++ {
		gv, err := h.model.PeekArray(mem.Name+"_arr", i)
		if err != nil {
			return fmt.Errorf("cosim: %w", err)
		}
		want := h.p.M.MemPeek(mem.Name, uint64(i)).Uint()
		if err := h.check(cycle, fmt.Sprintf("%s_arr[%d]", mem.Name, i), gv.Uint(), want, "memory word"); err != nil {
			return err
		}
	}
	return nil
}

// finalDiff re-checks every locked memory word once the pipeline has
// drained (the per-cycle loop throttles large memories).
func (h *harness) finalDiff() error {
	cycle := h.p.M.Cycle()
	for _, mem := range h.plan.Mems {
		if err := h.compareMem(cycle, mem); err != nil {
			return err
		}
	}
	return nil
}

// goldenDiff runs the same program on the OIAT reference and diffs the
// RTL's final architectural state against it. For single-interrupt runs
// the golden model replays the interrupt at the retirement boundary the
// pipeline chose, exactly like the simulator's OIAT suite.
func (h *harness) goldenDiff() error {
	g := golden.New(h.opts.Program.Text, h.opts.Program.Data, designs.DMemWords)
	for name, v := range h.opts.Firmware {
		addr, ok := csrAddrs[name]
		if !ok {
			return fmt.Errorf("cosim: firmware CSR %s has no RISC-V address", name)
		}
		idx, _ := riscv.CSRIndex(addr)
		g.CSR[idx] = v
	}
	boundary := -1
	if h.opts.InterruptAt > 0 {
		for k, r := range h.p.Retired() {
			if r.Exceptional && len(r.EArgs) > 0 && r.EArgs[0].Uint() == designs.KInt {
				boundary = k
				break
			}
		}
	}
	for steps := 0; !g.Halted && steps < 4*h.opts.MaxCycles; steps++ {
		if boundary >= 0 && len(g.Trace) == boundary {
			g.RaiseInterrupt(h.opts.InterruptBit)
			boundary = -1
		}
		if err := g.Step(); err != nil {
			return fmt.Errorf("cosim: golden: %w", err)
		}
	}
	if !g.Halted {
		return fmt.Errorf("cosim: golden model did not halt (pc=%#x)", g.PC)
	}

	cycle := h.p.M.Cycle()
	for i := 1; i < 32; i++ {
		gv, err := h.model.PeekArray("rf_arr", i)
		if err != nil {
			return fmt.Errorf("cosim: %w", err)
		}
		if err := h.check(cycle, fmt.Sprintf("rf_arr[%d]", i), gv.Uint(), uint64(g.Regs[i]), "OIAT register"); err != nil {
			return err
		}
	}
	for i := 0; i < designs.DMemWords; i++ {
		gv, err := h.model.PeekArray("dmem_arr", i)
		if err != nil {
			return fmt.Errorf("cosim: %w", err)
		}
		if err := h.check(cycle, fmt.Sprintf("dmem_arr[%d]", i), gv.Uint(), uint64(g.DMem[i]), "OIAT memory word"); err != nil {
			return err
		}
	}
	for _, vd := range h.plan.Vols {
		addr, ok := csrAddrs[vd.Name]
		if !ok {
			continue
		}
		idx, _ := riscv.CSRIndex(addr)
		gv, err := h.peek(vd.Name + "_q")
		if err != nil {
			return err
		}
		if err := h.check(cycle, vd.Name+"_q", gv, uint64(g.CSR[idx]), "OIAT CSR"); err != nil {
			return err
		}
	}
	return nil
}

// csrAddrs maps the designs' CSR volatiles to RISC-V CSR addresses for
// the golden-model diff.
var csrAddrs = map[string]uint32{
	"mstatus": riscv.CSRMStatus, "mie": riscv.CSRMIE, "mtvec": riscv.CSRMTVec,
	"mscratch": riscv.CSRMScratch, "mepc": riscv.CSRMEPC,
	"mcause": riscv.CSRMCause, "mtval": riscv.CSRMTVal, "mip": riscv.CSRMIP,
}

package check

import (
	"strings"
	"testing"

	"xpdl/internal/pdl/parser"
)

// checkSrc parses and checks, returning the Info or failing the test.
func checkSrc(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse failed:\n%v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check failed:\n%v", err)
	}
	return info
}

// checkErr parses and checks, expecting the checker (not the parser) to
// reject the program with a message containing want.
func checkErr(t *testing.T, src, want string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse failed:\n%v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("check unexpectedly succeeded (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q\ndoes not contain %q", err.Error(), want)
	}
}

// A minimal well-formed XPDL pipeline with final blocks, used as the
// template for rule tests.
const okXPDL = `
const ERR = 5'd2;
memory rf: uint<32>[32] with basic, comb_read;
memory imem: uint<32>[64] with nolock, sync_read;

pipe cpu(pc: uint<32>)[rf, imem] {
    insn <- imem[pc];
    ---
    rd = insn[11:7];
    if (insn == 0) { throw(ERR); }
    acquire(rf[rd], W);
    rf[rd] <- insn;
commit:
    release(rf[rd]);
except(code: uint<5>):
    call cpu(64);
}
`

func TestAcceptsWellFormedXPDL(t *testing.T) {
	info := checkSrc(t, okXPDL)
	pi := info.Pipes["cpu"]
	if pi.BodyStages != 2 || pi.CommitStages != 1 || pi.ExceptStages != 1 {
		t.Errorf("stage counts = %d/%d/%d", pi.BodyStages, pi.CommitStages, pi.ExceptStages)
	}
	if len(pi.WriteLocks) != 1 || pi.WriteLocks[0] != "rf[rd]" {
		t.Errorf("write locks = %v", pi.WriteLocks)
	}
	if c := info.Consts["ERR"]; c.Value != 2 || c.Width != 5 {
		t.Errorf("const ERR = %+v", c)
	}
}

// --- Base PDL analyses -----------------------------------------------------

func TestUndefinedVariable(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { y = z; }`, `undefined name "z"`)
}

func TestLatchedValueNotAvailableSameStage(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, sync_read;
pipe p(x: uint<2>)[m] {
    v <- m[x];
    w = v + 1;
}`
	checkErr(t, src, "not available until")
}

func TestLatchedValueAvailableNextStage(t *testing.T) {
	checkSrc(t, `
memory m: uint<8>[4] with nolock, sync_read;
pipe p(x: uint<2>)[m] {
    v <- m[x];
    ---
    w = v + 1;
}`)
}

func TestSyncReadMustBeLatched(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, sync_read;
pipe p(x: uint<2>)[m] {
    v = m[x];
}`
	checkErr(t, src, "sync-read")
}

func TestCombReadSameStage(t *testing.T) {
	checkSrc(t, `
memory m: uint<8>[4] with nolock, comb_read;
pipe p(x: uint<2>)[m] {
    v = m[x];
    w = v + 1;
}`)
}

func TestWidthMismatch(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>, y: uint<16>)[] { z = x + y; }`, "width mismatch")
}

func TestLiteralAdoptsWidth(t *testing.T) {
	checkSrc(t, `pipe p(x: uint<8>)[] { z = x + 200; }`)
}

func TestIfConditionMustBeBool(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { if (x + 1) { y = x; } }`, "must be bool")
}

func TestUnknownMemory(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { v = zap[x]; }`, `unknown memory "zap"`)
}

func TestUnconnectedMemory(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, comb_read;
pipe p(x: uint<2>)[] { v = m[x]; }`
	checkErr(t, src, "not connected")
}

func TestSliceBoundsChecked(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { y = x[9:0]; }`, "exceeds uint<8>")
	checkErr(t, `pipe p(x: uint<8>)[] { y = x[0:3]; }`, "inverted slice")
}

func TestSliceWidthInference(t *testing.T) {
	// x[7:4] is uint<4>; adding uint<4> works, uint<8> fails.
	checkSrc(t, `pipe p(x: uint<8>, y: uint<4>)[] { z = x[7:4] + y; }`)
	checkErr(t, `pipe p(x: uint<8>)[] { z = x[7:4] + x; }`, "width mismatch")
}

func TestRecordFieldAccess(t *testing.T) {
	src := `
extern func dec(i: uint<32>) -> (op: uint<5>, rd: uint<5>);
pipe p(x: uint<32>)[] {
    d = dec(x);
    o = d.op;
    bad = d.nope;
}`
	checkErr(t, src, `no field "nope"`)
}

func TestConstEvaluation(t *testing.T) {
	info := checkSrc(t, `
const A = 3;
const B = A * 4 + 1;
const C = B == 13;
pipe p(x: uint<8>)[] { y = x; }
`)
	if info.Consts["B"].Value != 13 {
		t.Errorf("B = %+v", info.Consts["B"])
	}
	if !info.Consts["C"].Bool || !info.Consts["C"].IsBool {
		t.Errorf("C = %+v", info.Consts["C"])
	}
}

func TestBuiltins(t *testing.T) {
	checkSrc(t, `
pipe p(x: uint<8>, y: uint<8>)[] {
    a = ext(x, 16);
    b = sext(x, 32);
    c = cat(x, y);
    d = lts(x, y);
    e = shra(x, y);
    f = divs(x, y);
    g = mulfull(x, y);
    h = a + 16'd1;
    i = c + 16'd2;
    j = g + 16'd3;
}`)
	checkErr(t, `pipe p(x: uint<8>)[] { a = ext(x, 0); }`, "between 1 and 64")
	checkErr(t, `pipe p(x: uint<8>)[] { a = cat(x); }`, "at least two")
}

func TestFunctionChecking(t *testing.T) {
	checkSrc(t, `
func inc(a: uint<8>) -> uint<8> {
    b = a + 1;
    return b;
}
pipe p(x: uint<8>)[] { y = inc(x); }`)
	checkErr(t, `func f(a: uint<8>) -> uint<8> { b = a; }`, "no return")
	checkErr(t, `func f(a: uint<8>) -> bool { return a; }`, "returns uint<8>")
}

// --- Lock discipline --------------------------------------------------------

func TestWriteWithoutLock(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] { m[x] <- 1; }`
	checkErr(t, src, "requires an owned write lock")
}

func TestBlockWithoutReserve(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] { block(m[x]); }`
	checkErr(t, src, "without a prior reserve")
}

func TestReleaseWithoutReserve(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] { release(m[x]); }`
	checkErr(t, src, "without an active reservation")
}

func TestUnreleasedLock(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] { acquire(m[x], W); m[x] <- 1; }`
	checkErr(t, src, "never released")
}

func TestReadNeedsOwnership(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] { v = m[x]; }`
	checkErr(t, src, "requires a lock reservation")
	// Reserved but never blocked on a basic lock: still not readable.
	src2 := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] {
    reserve(m[x], R);
    v = m[x];
    ---
    block(m[x]);
    release(m[x]);
}`
	checkErr(t, src2, "requires an owned lock")
}

func TestReserveBlockReleaseAcrossStages(t *testing.T) {
	checkSrc(t, `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] {
    reserve(m[x], W);
    ---
    block(m[x]);
    m[x] <- 7;
    release(m[x]);
}`)
}

func TestDoubleReserve(t *testing.T) {
	src := `
memory m: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[m] {
    reserve(m[x], W);
    reserve(m[x], W);
    ---
    block(m[x]);
    release(m[x]);
}`
	checkErr(t, src, "reserved twice")
}

func TestVolatileCannotBeLocked(t *testing.T) {
	src := `
volatile v: uint<8>;
pipe p(x: uint<8>)[v] { acquire(v, W); }`
	checkErr(t, src, "cannot be locked")
}

func TestNolockMemoryIsReadOnly(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, comb_read;
pipe p(x: uint<2>)[m] { m[x] <- 1; }`
	checkErr(t, src, "read-only")
}

// --- XPDL Rules 1-4 ----------------------------------------------------------

func TestRule3WriteLockReleasedInBody(t *testing.T) {
	src := `
memory rf: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[rf] {
    acquire(rf[x], W);
    rf[x] <- 1;
    release(rf[x]);
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 3")
}

func TestRule3WriteLockReleasedInExcept(t *testing.T) {
	src := `
memory rf: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[rf] {
    acquire(rf[x], W);
    rf[x] <- 1;
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    release(rf[x]);
}`
	checkErr(t, src, "Rule 3")
}

func TestRule4NoAcquireInCommit(t *testing.T) {
	src := `
memory rf: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[rf] {
    if (x == 0) { throw(5'd1); }
commit:
    acquire(rf[x], W);
    release(rf[x]);
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 4")
}

func TestRule4NoCallInCommit(t *testing.T) {
	src := `
pipe p(x: uint<2>)[] {
    if (x == 0) { throw(5'd1); }
commit:
    call p(x);
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 4")
}

func TestRule4NoMemWriteInCommit(t *testing.T) {
	src := `
memory rf: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[rf] {
    acquire(rf[x], W);
    if (x == 0) { throw(5'd1); }
commit:
    rf[x] <- 1;
    release(rf[x]);
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 4")
}

func TestRule2NoSpecInFinalBlocks(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    spec_barrier();
    if (x == 0) { throw(5'd1); }
commit:
    spec_check();
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 2")
}

func TestRule2NoSpecCallInExcept(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    spec_barrier();
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    s <- spec_call p(x);
}`
	checkErr(t, src, "Rule 2")
}

func TestRule1aExceptLockReleased(t *testing.T) {
	src := `
memory csr: uint<8>[4] with basic, comb_read;
pipe p(x: uint<2>)[csr] {
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    acquire(csr[0], W);
    csr[0] <- 1;
}`
	checkErr(t, src, "Rule 1a")
}

func TestRule1cRecursiveCallLastStageOnly(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    call p(x);
    ---
    y = c;
}`
	checkErr(t, src, "Rule 1c")
}

func TestRule1bNoAsyncReadAtExceptEnd(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, sync_read;
pipe p(x: uint<2>)[m] {
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    y <- m[0];
}`
	checkErr(t, src, "Rule 1b")
}

func TestThrowWithoutExceptBlock(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { throw(5'd1); }`, "no except block")
}

func TestThrowArgumentMismatch(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    if (x == 0) { throw(5'd1, 5'd2); }
commit:
    skip;
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "throw passes 2 arguments")
}

func TestThrowBeforeBarrierRejected(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    s <- spec_call p(x + 1);
    if (x == 0) { throw(5'd1); }
    ---
    spec_barrier();
    verify(s);
commit:
    skip;
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "throw before spec_barrier")
}

func TestBodyVarsInvisibleInExcept(t *testing.T) {
	src := `
pipe p(x: uint<8>)[] {
    tmp = x + 1;
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    y = tmp;
}`
	checkErr(t, src, `undefined name "tmp"`)
}

func TestExceptArgsVisibleInExcept(t *testing.T) {
	checkSrc(t, `
pipe p(x: uint<8>)[] {
    if (x == 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    y = c + 5'd1;
}`)
}

// --- Volatile rules ----------------------------------------------------------

func TestVolatileWriteOnlyInExcept(t *testing.T) {
	src := `
volatile pend: uint<8>;
pipe p(x: uint<8>)[pend] {
    pend <- 0;
}`
	checkErr(t, src, "only be written in final blocks")
}

func TestVolatileWriteNotInCommit(t *testing.T) {
	src := `
volatile pend: uint<8>;
pipe p(x: uint<8>)[pend] {
    if (x == 0) { throw(5'd1); }
commit:
    pend <- 0;
except(c: uint<5>):
    skip;
}`
	checkErr(t, src, "Rule 4")
}

func TestVolatileWriteInExceptOK(t *testing.T) {
	checkSrc(t, `
volatile pend: uint<8>;
pipe p(x: uint<8>)[pend] {
    if (pend != 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    pend <- 0;
}`)
}

func TestVolatileReadInSpeculativeRegion(t *testing.T) {
	src := `
volatile pend: uint<8>;
pipe p(x: uint<8>)[pend] {
    s <- spec_call p(x + 1);
    v = pend;
    ---
    spec_barrier();
    verify(s);
    if (v != 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    pend <- 0;
}`
	checkErr(t, src, "speculative region")
}

func TestVolatileReadAfterBarrierOK(t *testing.T) {
	checkSrc(t, `
volatile pend: uint<8>;
pipe p(x: uint<8>)[pend] {
    s <- spec_call p(x + 1);
    ---
    spec_barrier();
    verify(s);
    v = pend;
    if (v != 0) { throw(5'd1); }
commit:
    skip;
except(c: uint<5>):
    pend <- 0;
}`)
}

// --- Speculation and calls ----------------------------------------------------

func TestSpecCallTargetsSelf(t *testing.T) {
	src := `
pipe q(x: uint<8>)[] { y = x; }
pipe p(x: uint<8>)[q] { s <- spec_call q(x); }`
	checkErr(t, src, "must target the same pipeline")
}

func TestVerifyNeedsHandle(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { verify(x); }`, "needs a speculation handle")
}

func TestCallArgCount(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { call p(x, x); }`, "passes 2 arguments")
}

func TestSubPipelineResultBinding(t *testing.T) {
	checkSrc(t, `
pipe div(n: uint<32>, d: uint<32>) -> uint<32> [] {
    q = n / d;
    return q;
}
pipe cpu(pc: uint<32>)[div] {
    r <- call div(pc, pc);
    ---
    y = r + 1;
}`)
}

func TestSubPipelineResultNotAvailableSameStage(t *testing.T) {
	src := `
pipe div(n: uint<32>, d: uint<32>) -> uint<32> [] {
    q = n / d;
    return q;
}
pipe cpu(pc: uint<32>)[div] {
    r <- call div(pc, pc);
    y = r + 1;
}`
	checkErr(t, src, "not available until")
}

func TestReturnOutsideResultPipe(t *testing.T) {
	checkErr(t, `pipe p(x: uint<8>)[] { return x; }`, "does not declare a result")
}

func TestShadowingModuleRejected(t *testing.T) {
	src := `
memory m: uint<8>[4] with nolock, comb_read;
pipe p(x: uint<8>)[m] { m = x; }`
	checkErr(t, src, "shadows a module")
}

func TestDuplicateDeclarations(t *testing.T) {
	checkErr(t, `
memory m: uint<8>[4] with nolock, comb_read;
volatile m: uint<8>;
pipe p(x: uint<8>)[] { y = x; }`, "redeclared")
}

func TestFigure1StyleProcessorChecks(t *testing.T) {
	// The shape of the paper's Figure 1 (base PDL, no exceptions).
	checkSrc(t, `
extern func alu(op: uint<4>, a: uint<32>, b: uint<32>) -> uint<32>;
extern func calc_npc(pc: uint<32>, insn: uint<32>) -> uint<32>;
extern func isStore(insn: uint<32>) -> bool;
extern func isLoad(insn: uint<32>) -> bool;

memory rf: uint<32>[32] with bypass, comb_read;
memory imem: uint<32>[1024] with nolock, sync_read;
memory dmem: uint<32>[1024] with bypass, sync_read;

pipe cpu(pc: uint<32>)[rf, imem, dmem] {
    spec_check();
    insn <- imem[pc[9:0]];
    ---
    spec_check();
    s <- spec_call cpu(pc + 1);
    rs1 = insn[19:15];
    rd = insn[11:7];
    acquire(rf[ext(rs1, 5)], R);
    alu_arg1 = rf[ext(rs1, 5)];
    release(rf[ext(rs1, 5)]);
    reserve(rf[ext(rd, 5)], W);
    ---
    spec_barrier();
    alu_out = alu(insn[3:0], alu_arg1, alu_arg1);
    npc = calc_npc(pc, insn);
    if (npc == pc + 1) { verify(s); }
    else { invalidate(s); call cpu(npc); }
    ---
    addr = alu_out[9:0];
    acquire(dmem[addr], W);
    if (isStore(insn)) { dmem[addr] <- alu_arg1; }
    if (isLoad(insn)) { dmem_out <- dmem[addr]; }
    else { dmem_out = alu_out; }
    release(dmem[addr]);
    ---
    block(rf[ext(rd, 5)]);
    rf[ext(rd, 5)] <- dmem_out;
    release(rf[ext(rd, 5)]);
}`)
}

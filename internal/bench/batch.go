package bench

import (
	"fmt"
	"strings"
	"time"

	"xpdl/internal/designs"
	"xpdl/internal/sim"
	"xpdl/internal/vm"
	"xpdl/internal/workloads"
)

// BatchRow summarizes one lockstep batch measurement: N lanes of the
// same design (one per workload kernel) advanced to a common cycle
// horizon, sequentially on the closure engine versus under vm.Batch
// with the shared bytecode image. Aggregate throughput counts
// machine-cycles across all lanes; lanes that drain early have idle
// tails up to the horizon, which the vm engine fast-forwards in O(1)
// while the sequential baseline ticks them cycle by cycle.
type BatchRow struct {
	Lanes     int
	Horizon   int
	SeqWall   time.Duration
	BatchWall time.Duration
	SeqMCPS   float64 // aggregate machine-cycles/s, millions
	BatchMCPS float64
	Speedup   float64
}

// batchLanes builds one booted lane per kernel on the given engine.
func batchLanes(kernels []workloads.Workload, engine string) ([]*designs.Processor, error) {
	lanes := make([]*designs.Processor, 0, len(kernels))
	for _, w := range kernels {
		prog, err := w.Assemble()
		if err != nil {
			return nil, err
		}
		p, err := designs.BuildCfg(designs.All, sim.Config{Engine: engine})
		if err != nil {
			return nil, err
		}
		if err := p.Load(prog); err != nil {
			return nil, err
		}
		if err := p.Boot(); err != nil {
			return nil, err
		}
		lanes = append(lanes, p)
	}
	return lanes, nil
}

// BatchThroughput measures the workload sweep as one lockstep batch.
func BatchThroughput(kernels []workloads.Workload) (BatchRow, error) {
	// The common horizon is the slowest kernel's drain cycle, found
	// with an untimed scouting pass.
	horizon := 0
	scout, err := batchLanes(kernels, "closure")
	if err != nil {
		return BatchRow{}, err
	}
	for i, p := range scout {
		n, err := p.Run(kernels[i].MaxSteps * 8)
		if err != nil {
			return BatchRow{}, fmt.Errorf("bench: %s: %w", kernels[i].Name, err)
		}
		if n > horizon {
			horizon = n
		}
	}

	seq, err := batchLanes(kernels, "closure")
	if err != nil {
		return BatchRow{}, err
	}
	t0 := time.Now()
	for i, p := range seq {
		if err := p.M.Advance(horizon); err != nil {
			return BatchRow{}, fmt.Errorf("bench: seq lane %s: %w", kernels[i].Name, err)
		}
	}
	seqWall := time.Since(t0)

	bat, err := batchLanes(kernels, "vm")
	if err != nil {
		return BatchRow{}, err
	}
	steppers := make([]vm.Stepper, len(bat))
	for i, p := range bat {
		steppers[i] = p.M
	}
	b := vm.NewBatch(steppers)
	t0 = time.Now()
	if live := b.Run(horizon); live != len(bat) {
		for i := range bat {
			if err := b.Err(i); err != nil {
				return BatchRow{}, fmt.Errorf("bench: batch lane %s: %w", kernels[i].Name, err)
			}
		}
	}
	batchWall := time.Since(t0)

	// Cross-check: both drivers must have produced the same runs.
	for i := range seq {
		if sr, br := len(seq[i].Retired()), len(bat[i].Retired()); sr != br {
			return BatchRow{}, fmt.Errorf("bench: lane %s retired %d sequentially but %d batched",
				kernels[i].Name, sr, br)
		}
	}

	total := float64(horizon) * float64(len(kernels))
	return BatchRow{
		Lanes:     len(kernels),
		Horizon:   horizon,
		SeqWall:   seqWall,
		BatchWall: batchWall,
		SeqMCPS:   total / seqWall.Seconds() / 1e6,
		BatchMCPS: total / batchWall.Seconds() / 1e6,
		Speedup:   seqWall.Seconds() / batchWall.Seconds(),
	}, nil
}

// BatchString renders the batch measurement.
func BatchString(r BatchRow) string {
	var b strings.Builder
	b.WriteString("Lockstep batch — workload sweep as lanes of one design\n")
	fmt.Fprintf(&b, "lanes %d, horizon %d cycles (aggregate %d machine-cycles)\n",
		r.Lanes, r.Horizon, r.Lanes*r.Horizon)
	fmt.Fprintf(&b, "closure sequential: %10.2f Mcycles/s (%v)\n", r.SeqMCPS, r.SeqWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "vm lockstep batch:  %10.2f Mcycles/s (%v)\n", r.BatchMCPS, r.BatchWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "speedup: %.2fx\n", r.Speedup)
	return b.String()
}

package asm

import (
	"fmt"

	"xpdl/internal/riscv"
)

// emitInstr encodes one (possibly pseudo) instruction.
func (a *assembler) emitInstr(s stmt) error {
	need := func(n int) error {
		if len(s.args) != n {
			return fmt.Errorf("line %d: %s takes %d operands, got %d", s.line, s.op, n, len(s.args))
		}
		return nil
	}
	emitI := func(in riscv.Inst) error {
		raw, ok := riscv.Encode(in)
		if !ok {
			return fmt.Errorf("line %d: cannot encode %v", s.line, in)
		}
		a.text = append(a.text, raw)
		return nil
	}

	switch s.op {
	// --- Pseudo-instructions ------------------------------------------
	case "nop":
		return emitI(riscv.Inst{Op: riscv.ADDI})
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err1 := reg(s.args[0], s.line)
		rs, err2 := reg(s.args[1], s.line)
		if err1 != nil || err2 != nil {
			return firstErr(err1, err2)
		}
		return emitI(riscv.Inst{Op: riscv.ADDI, Rd: rd, Rs1: rs})
	case "li", "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		v, err := a.value(s.args[1], s.line)
		if err != nil {
			return err
		}
		if s.op == "li" && fitsI12(v) {
			return emitI(riscv.Inst{Op: riscv.ADDI, Rd: rd, Imm: int32(v)})
		}
		// lui+addi pair; round up when the low half is negative.
		lo := int32(v) << 20 >> 20
		hi := int32(uint32(int32(v)-lo) &^ 0xFFF)
		if err := emitI(riscv.Inst{Op: riscv.LUI, Rd: rd, Imm: hi}); err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.ADDI, Rd: rd, Rs1: rd, Imm: lo})
	case "j":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.branchOffset(s.args[0], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.JAL, Rd: 0, Imm: off})
	case "call":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.branchOffset(s.args[0], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.JAL, Rd: 1, Imm: off})
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.JALR, Rd: 0, Rs1: rs})
	case "ret":
		return emitI(riscv.Inst{Op: riscv.JALR, Rd: 0, Rs1: 1})
	case "beqz", "bnez", "bltz", "bgez", "blez", "bgtz":
		if err := need(2); err != nil {
			return err
		}
		rs, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, err := a.branchOffset(s.args[1], s.line)
		if err != nil {
			return err
		}
		in := riscv.Inst{Imm: off}
		switch s.op {
		case "beqz":
			in.Op, in.Rs1 = riscv.BEQ, rs
		case "bnez":
			in.Op, in.Rs1 = riscv.BNE, rs
		case "bltz":
			in.Op, in.Rs1 = riscv.BLT, rs
		case "bgez":
			in.Op, in.Rs1 = riscv.BGE, rs
		case "blez": // rs <= 0  <=>  0 >= rs
			in.Op, in.Rs2 = riscv.BGE, rs
		case "bgtz": // rs > 0  <=>  0 < rs
			in.Op, in.Rs2 = riscv.BLT, rs
		}
		return emitI(in)
	case "csrr":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		c, err := a.csr(s.args[1], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.CSRRS, Rd: rd, CSR: c})
	case "csrw":
		if err := need(2); err != nil {
			return err
		}
		c, err := a.csr(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.CSRRW, Rd: 0, Rs1: rs, CSR: c})

	// --- System -------------------------------------------------------
	case "ecall":
		return emitI(riscv.Inst{Op: riscv.ECALL})
	case "ebreak":
		return emitI(riscv.Inst{Op: riscv.EBREAK})
	case "mret":
		return emitI(riscv.Inst{Op: riscv.MRET})
	case "wfi":
		return emitI(riscv.Inst{Op: riscv.WFI})
	case "fence":
		return emitI(riscv.Inst{Op: riscv.FENCE})
	}

	// --- Regular instruction table -------------------------------------
	if op, ok := rTypeOps[s.op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(s.args[0], s.line)
		rs1, e2 := reg(s.args[1], s.line)
		rs2, e3 := reg(s.args[2], s.line)
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	if op, ok := iTypeOps[s.op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(s.args[0], s.line)
		rs1, e2 := reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		v, err := a.value(s.args[2], s.line)
		if err != nil {
			return err
		}
		if op >= riscv.SLLI && op <= riscv.SRAI {
			if v < 0 || v > 31 {
				return fmt.Errorf("line %d: shift amount %d out of range", s.line, v)
			}
		} else if !fitsI12(v) {
			return fmt.Errorf("line %d: immediate %d does not fit 12 bits", s.line, v)
		}
		return emitI(riscv.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
	}
	if op, ok := loadOps[s.op]; ok {
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return err
		}
		if !fitsI12(int64(off)) {
			return fmt.Errorf("line %d: load offset %d does not fit 12 bits", s.line, off)
		}
		return emitI(riscv.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
	}
	if op, ok := storeOps[s.op]; ok {
		if err := need(2); err != nil {
			return err
		}
		rs2, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return err
		}
		if !fitsI12(int64(off)) {
			return fmt.Errorf("line %d: store offset %d does not fit 12 bits", s.line, off)
		}
		return emitI(riscv.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off})
	}
	if op, ok := branchOps[s.op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rs1, e1 := reg(s.args[0], s.line)
		rs2, e2 := reg(s.args[1], s.line)
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		off, err := a.branchOffset(s.args[2], s.line)
		if err != nil {
			return err
		}
		if off < -4096 || off >= 4096 {
			return fmt.Errorf("line %d: conditional branch offset %d exceeds ±4 KiB", s.line, off)
		}
		return emitI(riscv.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	}
	switch s.op {
	case "lui", "auipc":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		v, err := a.value(s.args[1], s.line)
		if err != nil {
			return err
		}
		op := riscv.LUI
		if s.op == "auipc" {
			op = riscv.AUIPC
		}
		return emitI(riscv.Inst{Op: op, Rd: rd, Imm: int32(v) << 12})
	case "jal":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, err := a.branchOffset(s.args[1], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.JAL, Rd: rd, Imm: off})
	case "jalr":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return err
		}
		return emitI(riscv.Inst{Op: riscv.JALR, Rd: rd, Rs1: base, Imm: off})
	}
	if op, ok := csrOps[s.op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		c, err := a.csr(s.args[1], s.line)
		if err != nil {
			return err
		}
		var src uint32
		if op >= riscv.CSRRWI {
			v, err := a.value(s.args[2], s.line)
			if err != nil || v < 0 || v > 31 {
				return fmt.Errorf("line %d: CSR immediate out of range", s.line)
			}
			src = uint32(v)
		} else {
			src, err = reg(s.args[2], s.line)
			if err != nil {
				return err
			}
		}
		return emitI(riscv.Inst{Op: op, Rd: rd, Rs1: src, CSR: c})
	}
	return fmt.Errorf("line %d: unknown mnemonic %q", s.line, s.op)
}

// branchOffset resolves a label (pc-relative) or literal offset.
func (a *assembler) branchOffset(arg string, line int) (int32, error) {
	var off int32
	if addr, ok := a.labels[arg]; ok {
		off = int32(addr) - int32(a.pc())
	} else {
		v, err := parseInt(arg)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad branch target %q", line, arg)
		}
		off = int32(v)
	}
	if off < -(1<<20) || off >= 1<<20 || off%2 != 0 {
		return 0, fmt.Errorf("line %d: branch/jump offset %d out of range", line, off)
	}
	return off, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

var rTypeOps = map[string]riscv.Op{
	"add": riscv.ADD, "sub": riscv.SUB, "sll": riscv.SLL, "slt": riscv.SLT,
	"sltu": riscv.SLTU, "xor": riscv.XOR, "srl": riscv.SRL, "sra": riscv.SRA,
	"or": riscv.OR, "and": riscv.AND,
	"mul": riscv.MUL, "mulh": riscv.MULH, "mulhsu": riscv.MULHSU, "mulhu": riscv.MULHU,
	"div": riscv.DIV, "divu": riscv.DIVU, "rem": riscv.REM, "remu": riscv.REMU,
}

var iTypeOps = map[string]riscv.Op{
	"addi": riscv.ADDI, "slti": riscv.SLTI, "sltiu": riscv.SLTIU,
	"xori": riscv.XORI, "ori": riscv.ORI, "andi": riscv.ANDI,
	"slli": riscv.SLLI, "srli": riscv.SRLI, "srai": riscv.SRAI,
}

var loadOps = map[string]riscv.Op{
	"lb": riscv.LB, "lh": riscv.LH, "lw": riscv.LW, "lbu": riscv.LBU, "lhu": riscv.LHU,
}

var storeOps = map[string]riscv.Op{
	"sb": riscv.SB, "sh": riscv.SH, "sw": riscv.SW,
}

var branchOps = map[string]riscv.Op{
	"beq": riscv.BEQ, "bne": riscv.BNE, "blt": riscv.BLT,
	"bge": riscv.BGE, "bltu": riscv.BLTU, "bgeu": riscv.BGEU,
}

var csrOps = map[string]riscv.Op{
	"csrrw": riscv.CSRRW, "csrrs": riscv.CSRRS, "csrrc": riscv.CSRRC,
	"csrrwi": riscv.CSRRWI, "csrrsi": riscv.CSRRSI, "csrrci": riscv.CSRRCI,
}

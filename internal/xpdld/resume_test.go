package xpdld

// Cancellation, corruption and recovery: DELETE mid-run leaves a
// resumable job whose resumed report is byte-identical to an
// uninterrupted run; a corrupted or future-version checkpoint surfaces
// as a typed error in the job's status (never a panic); a gracefully
// preempted server hands its running jobs to the next daemon on the
// same state directory.

import (
	"os"
	"testing"
	"time"
)

// runToDone submits a spec on a fresh server and returns the canonical
// report bytes of its uninterrupted run.
func runToDone(t *testing.T, sp Spec) []byte {
	t.Helper()
	_, c := newTestServer(t, Config{Workers: 2})
	st, err := c.Submit(sp)
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	waitState(t, c, st.ID, StateDone)
	b, err := c.Report(st.ID)
	if err != nil {
		t.Fatalf("baseline report: %v", err)
	}
	return b
}

// cancelAtCheckpoint streams a job's events and cancels it as soon as
// its first checkpoint lands, returning the terminal status.
func cancelAtCheckpoint(t *testing.T, c *Client, id string) Status {
	t.Helper()
	sent := false
	st, err := c.Events(testCtx(t), id, func(ev Status) bool {
		if !sent && ev.Progress.Checkpoints >= 1 {
			sent = true
			if _, err := c.Cancel(id); err != nil {
				t.Errorf("cancel: %v", err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if !sent {
		t.Fatalf("job %s went terminal (%s) before its first checkpoint", id, st.State)
	}
	return st
}

// TestCancelResumeEquivalence pins satellite 4: DELETE cancels a
// running sim or cosim job at a snapshot boundary, the job stays
// resumable, and the resumed run's report is byte-identical to an
// uninterrupted one.
func TestCancelResumeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"chaos", Spec{
			Kind: KindChaos, Design: "all", Asm: loopAsm(60_000),
			Seed: 9, CheckpointEvery: 4_000, MaxCycles: 5_000_000,
		}},
		{"cosim", Spec{
			Kind: KindCosim, Design: "base", Asm: loopAsm(4_000),
			CheckpointEvery: 1_000, MaxCycles: 5_000_000,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runToDone(t, tc.spec)

			s, c := newTestServer(t, Config{Workers: 2})
			st, err := c.Submit(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			id := st.ID
			st = cancelAtCheckpoint(t, c, id)
			if st.State != StateCanceled || !st.Resumable {
				t.Fatalf("canceled job: state %s resumable %v, want canceled+resumable", st.State, st.Resumable)
			}
			if _, err := os.Stat(s.Store().CheckpointPath(id)); err != nil {
				t.Fatalf("canceled job left no checkpoint: %v", err)
			}

			if _, err := c.Resume(id); err != nil {
				t.Fatalf("resume: %v", err)
			}
			waitState(t, c, id, StateDone)
			got, err := c.Report(id)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("resumed report differs from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestPreemptRestartCompletes pins graceful preemption: Close()
// checkpoints running jobs back to queued, and a new server on the same
// state directory recovers and finishes them with the uninterrupted
// report.
func TestPreemptRestartCompletes(t *testing.T) {
	sp := Spec{
		Kind: KindChaos, Design: "base", Asm: loopAsm(120_000),
		Seed: 5, Engine: "vm", CheckpointEvery: 5_000, MaxCycles: 5_000_000,
	}
	want := runToDone(t, sp)

	dir := t.TempDir()
	cfg := Config{StateDir: dir, Workers: 2}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	deadline := time.Now().Add(time.Minute)
	for {
		cur, ok := s1.JobStatus(id)
		if ok && cur.Progress.Checkpoints >= 1 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job went terminal before first checkpoint: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint within a minute")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The preempted job is persisted as queued, not canceled or lost.
	onDisk, err := s1.Store().ReadStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued {
		t.Fatalf("preempted job persisted as %s, want queued", onDisk.State)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Metrics().Get("xpdld_jobs_recovered_total"); got != 1 {
		t.Errorf("jobs_recovered_total = %d, want 1", got)
	}
	for {
		cur, ok := s2.JobStatus(id)
		if !ok {
			t.Fatalf("job %s unknown to the recovered server", id)
		}
		if cur.State.Terminal() {
			if cur.State != StateDone {
				t.Fatalf("recovered job: %+v", cur)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job did not finish within a minute")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := s2.Store().ReadReport(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("recovered report differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got := s2.Metrics().Get("xpdld_jobs_resumed_total"); got == 0 {
		t.Error("recovered job did not resume from its checkpoint")
	}
}

// TestCheckpointCorruption pins satellite 2: a truncated blob, a bit
// flip, and a future-version stamp in a job's checkpoint each fail the
// resumed job with the matching typed error in its status JSON — and
// the daemon survives to run the next job.
func TestCheckpointCorruption(t *testing.T) {
	cases := []struct {
		name    string
		kind    string // job kind carrying the checkpoint
		corrupt func(b []byte) []byte
		errKind string
	}{
		{"truncated", KindChaos, func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrSnapCorrupt},
		{"crc-flip", KindChaos, func(b []byte) []byte {
			b[len(b)-9] ^= 0x01 // last payload byte, just before the CRC trailer
			return b
		}, ErrSnapCorrupt},
		{"future-version", KindChaos, func(b []byte) []byte {
			b[4] = 0x63 // version varint right after the 4-byte magic
			return b
		}, ErrSnapVersion},
		// The cosim path restores inside cosim.Run; its snap errors must
		// keep their identity through classifyRunErr.
		{"cosim-truncated", KindCosim, func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrSnapCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, c := newTestServer(t, Config{Workers: 2})
			sp := Spec{
				Kind: KindChaos, Design: "base", Asm: loopAsm(60_000),
				Seed: 3, Engine: "vm", CheckpointEvery: 4_000, MaxCycles: 5_000_000,
			}
			if tc.kind == KindCosim {
				sp = Spec{
					Kind: KindCosim, Design: "base", Asm: loopAsm(4_000),
					CheckpointEvery: 1_000, MaxCycles: 5_000_000,
				}
			}
			st, err := c.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			id := st.ID
			if st := cancelAtCheckpoint(t, c, id); st.State != StateCanceled {
				t.Fatalf("cancel: %+v", st)
			}

			path := s.Store().CheckpointPath(id)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := c.Resume(id); err != nil {
				t.Fatal(err)
			}
			final, err := c.Wait(testCtx(t), id)
			if err != nil {
				t.Fatal(err)
			}
			if final.State != StateFailed || final.Error == nil || final.Error.Kind != tc.errKind {
				t.Fatalf("resumed-from-corruption job: state %s error %+v, want failed/%s",
					final.State, final.Error, tc.errKind)
			}

			// The daemon took the hit as a job failure, not a crash.
			ok, err := c.Submit(Spec{Kind: KindCompile, Design: "base"})
			if err != nil {
				t.Fatalf("daemon unhealthy after corrupt restore: %v", err)
			}
			waitState(t, c, ok.ID, StateDone)
		})
	}
}

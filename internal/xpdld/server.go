package xpdld

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xpdl/internal/faultfs"
)

// Config tunes a Server.
type Config struct {
	// StateDir is the artifact-store root. Required.
	StateDir string
	// Workers is the pool width (default: GOMAXPROCS — the pool
	// saturates all cores; negative: no workers at all, for tests that
	// need jobs to stay queued).
	Workers int
	// CheckpointEvery is the default snapshot interval in cycles for
	// jobs that do not set their own (default 50_000).
	CheckpointEvery int
	// Quota is the per-tenant admission policy.
	Quota Quota
	// MaxQueue bounds the global admission queue (default 256): a
	// submission that would push the queued-job count past it is shed
	// with a 503 + Retry-After instead of admitted — saturation
	// degrades into client backoff, not unbounded memory growth.
	MaxQueue int
	// MaxAttempts bounds crash-loop retries (default 3): a job
	// re-enqueued by crash recovery more than this many times without
	// writing a checkpoint is quarantined instead of retried.
	MaxAttempts int
	// FS is the artifact store's filesystem (default: the real one).
	// The torture suite plugs a faultfs.Faulty in here.
	FS faultfs.FS
	// Logf receives operational log lines (degradation events,
	// recovery sweeps). Default: the standard logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers < 0 {
		c.Workers = 0
	} else if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 50_000
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	c.Quota = c.Quota.withDefaults()
	return c
}

// job is the in-memory record of one job. The persisted Status in the
// store mirrors it at every transition.
type job struct {
	id   string
	spec Spec

	mu        sync.Mutex
	state     State
	progress  Progress
	attempts  int // crash-recovery re-enqueues since last durable progress
	jerr      *JobError
	resumable bool
	cancel    context.CancelFunc // non-nil while running
	preempt   bool               // shutdown preemption, not user cancel
	watchers  []chan Status
}

// statusLocked snapshots the job; j.mu must be held.
func (j *job) statusLocked() Status {
	return Status{
		ID:        j.id,
		Spec:      j.spec,
		State:     j.state,
		Progress:  j.progress,
		Attempts:  j.attempts,
		Error:     j.jerr,
		Resumable: j.resumable,
	}
}

// Status snapshots the job.
func (j *job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// publishLocked fans a status out to every watcher; j.mu must be held.
// Sends never block (a slow watcher drops intermediate updates); a
// terminal status closes every watcher channel, and the event handler
// re-reads the final status after the close, so the last word is never
// lost to a full buffer.
func (j *job) publishLocked(st Status) {
	for _, ch := range j.watchers {
		select {
		case ch <- st:
		default:
		}
	}
	if st.State.Terminal() {
		for _, ch := range j.watchers {
			close(ch)
		}
		j.watchers = nil
	}
}

// subscribe registers a watcher and returns it with the current status.
func (j *job) subscribe() (chan Status, Status) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.statusLocked()
	if st.State.Terminal() {
		return nil, st
	}
	ch := make(chan Status, 16)
	j.watchers = append(j.watchers, ch)
	return ch, st
}

// unsubscribe removes a watcher (the events handler's client went away).
func (j *job) unsubscribe(ch chan Status) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, w := range j.watchers {
		if w == ch {
			j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
			return
		}
	}
}

// Server is the simulation service: an artifact store, a compile
// cache, a worker pool, and the HTTP API over them. It implements
// http.Handler.
type Server struct {
	cfg     Config
	store   *Store
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	order   []string // submission order, for listing
	pending []*job   // FIFO run queue
	seq     int
	closing bool

	busy atomic.Int64
	wg   sync.WaitGroup
}

// New opens the state directory, recovers any jobs a previous process
// left queued or running, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("xpdld: Config.StateDir is required")
	}
	store, err := OpenStoreFS(cfg.StateDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	metrics := NewMetrics()
	s := &Server{
		cfg:     cfg,
		store:   store,
		cache:   NewCache(metrics),
		metrics: metrics,
		jobs:    make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover scans the store and adopts every persisted job: terminal
// jobs as history, queued/running jobs back onto the run queue — a
// job that was mid-flight when the process died resumes from its last
// checkpoint with the work before it intact. Each re-enqueue bumps the
// job's attempt counter; a job past MaxAttempts with no durable
// progress in between is crash-looping (it, or the state it restores,
// kills the daemon every time) and is quarantined instead of being
// retried forever. Stranded temp files from interrupted writes are
// swept first — they are never read, so this is hygiene, not safety.
func (s *Server) recover() error {
	if n, err := s.store.SweepTemps(); err == nil && n > 0 {
		s.metrics.Add("xpdld_temps_swept_total", uint64(n))
		s.cfg.Logf("xpdld: recovery swept %d stranded temp file(s)", n)
	}
	ids, err := s.store.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		sp, err := s.store.ReadSpec(id)
		if errors.Is(err, os.ErrNotExist) {
			// A job directory with no durable spec is the residue of an
			// admission whose spec write failed — the client saw an error
			// and no status was ever written, so nothing was promised.
			// Skip it, but burn its sequence number so a fresh submission
			// never reuses the haunted ID.
			s.metrics.Inc("xpdld_ghost_jobs_skipped_total")
			s.cfg.Logf("xpdld: recover: skipping %s (no durable spec; admission never completed)", id)
			if n := jobSeq(id); n > s.seq {
				s.seq = n
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("xpdld: recover %s: %w", id, err)
		}
		j := &job{id: id, spec: sp, state: StateQueued}
		if st, err := s.store.ReadStatus(id); err == nil {
			j.progress = st.Progress
			j.attempts = st.Attempts
			if st.State.Terminal() {
				j.state = st.State
				j.jerr = st.Error
				j.resumable = st.Resumable
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("xpdld: recover %s: %w", id, err)
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if n := jobSeq(id); n > s.seq {
			s.seq = n
		}
		if j.state.Terminal() {
			continue
		}
		j.attempts++
		if j.attempts > s.cfg.MaxAttempts {
			j.state = StateQuarantined
			j.resumable = true
			j.jerr = &JobError{Kind: ErrQuarantined, Detail: fmt.Sprintf(
				"crash-looping: %d recovery attempts without durable progress (limit %d); resume -force to retry",
				j.attempts, s.cfg.MaxAttempts)}
			s.metrics.Inc("xpdld_jobs_quarantined_total")
			s.cfg.Logf("xpdld: %s quarantined after %d crash-recovery attempts", id, j.attempts)
		} else {
			s.pending = append(s.pending, j)
			s.metrics.Inc("xpdld_jobs_recovered_total")
		}
		// Persisting the bumped attempt counter (or the quarantine) may
		// itself hit a failing disk; that must not stop recovery — the
		// in-memory queue is correct, and the next transition retries
		// the write.
		if err := s.store.WriteStatus(id, j.Status()); err != nil {
			s.metrics.Inc("xpdld_store_write_failures_total")
			s.cfg.Logf("xpdld: recover %s: status write failed (continuing): %v", id, err)
		}
	}
	return nil
}

// Metrics exposes the counter registry (the runner and tests use it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store exposes the artifact store (tests corrupt checkpoints in it).
func (s *Server) Store() *Store { return s.store }

// Close shuts the pool down gracefully: running jobs are preempted at
// their next cycle boundary, checkpointed, and persisted back to
// queued — the next process on this state directory picks them up with
// no lost work. Blocks until every worker has exited.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.preempt = true
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Submit admits a job: normalize the spec, shed load if the admission
// queue is full, check the tenant quota, persist, enqueue. A store
// failure while persisting rejects the submission with a typed store
// error and leaves no ghost job behind.
func (s *Server) Submit(sp Spec) (Status, error) {
	if jerr := sp.normalize(s.cfg); jerr != nil {
		return Status{}, jerr
	}
	s.mu.Lock()
	if len(s.pending) >= s.cfg.MaxQueue {
		queued := len(s.pending)
		s.mu.Unlock()
		s.metrics.Inc("xpdld_overload_denied_total")
		return Status{}, &OverloadError{Queued: queued, Limit: s.cfg.MaxQueue, RetryAfter: time.Second}
	}
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.spec.Tenant == sp.Tenant && !j.state.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	if active >= s.cfg.Quota.MaxActive {
		s.mu.Unlock()
		s.metrics.Inc("xpdld_quota_denied_total")
		return Status{}, &QuotaError{Tenant: sp.Tenant, Active: active, Limit: s.cfg.Quota.MaxActive}
	}
	s.seq++
	id := FormatID(s.seq)
	j := &job{id: id, spec: sp, state: StateQueued}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	// Persist before enqueueing: a worker must never observe (or
	// outrun the durability of) a job the store has not admitted.
	st := j.Status()
	err := s.store.CreateJob(id, sp)
	if err == nil {
		err = s.store.WriteStatus(id, st)
	}
	if err != nil {
		s.metrics.Inc("xpdld_store_write_failures_total")
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		return Status{}, storeErr(err)
	}
	s.mu.Lock()
	s.pending = append(s.pending, j)
	s.cond.Signal()
	s.mu.Unlock()
	s.metrics.Inc(fmt.Sprintf("xpdld_jobs_submitted_total{kind=%q}", sp.Kind))
	return st, nil
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobStatus looks a job's status up.
func (s *Server) JobStatus(id string) (Status, bool) {
	j, ok := s.jobByID(id)
	if !ok {
		return Status{}, false
	}
	return j.Status(), true
}

// Cancel stops a job. A queued job goes terminal immediately; a
// running one is interrupted at its next cycle boundary, where the
// runner persists a resumable checkpoint. Terminal jobs return an
// error.
func (s *Server) Cancel(id string) (Status, error) {
	j, ok := s.jobByID(id)
	if !ok {
		return Status{}, os.ErrNotExist
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.resumable = true
		j.jerr = &JobError{Kind: "canceled", Detail: "canceled while queued"}
		st := j.statusLocked()
		j.publishLocked(st)
		j.mu.Unlock()
		s.metrics.Inc("xpdld_jobs_canceled_total")
		_ = s.store.WriteStatus(id, st)
		return st, nil
	case StateRunning:
		j.cancel()
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	default:
		st := j.statusLocked()
		j.mu.Unlock()
		return st, fmt.Errorf("job %s is already %s", id, st.State)
	}
}

// Resume re-enqueues a canceled job. It restarts from its persisted
// checkpoint when one exists, from scratch otherwise; either way the
// final report is identical to an uninterrupted run's. A quarantined
// job resumes only with force — the explicit human override that
// breaks a crash-loop quarantine — which also resets its attempt
// counter.
func (s *Server) Resume(id string, force bool) (Status, error) {
	j, ok := s.jobByID(id)
	if !ok {
		return Status{}, os.ErrNotExist
	}
	j.mu.Lock()
	switch {
	case j.state == StateCanceled:
	case j.state == StateQuarantined && force:
	case j.state == StateQuarantined:
		st := j.statusLocked()
		j.mu.Unlock()
		return st, fmt.Errorf("job %s is quarantined after %d crash-recovery attempts; resume -force to retry", id, st.Attempts)
	default:
		st := j.statusLocked()
		j.mu.Unlock()
		return st, fmt.Errorf("job %s is %s, only canceled jobs resume", id, st.State)
	}
	j.state = StateQueued
	j.jerr = nil
	j.attempts = 0
	st := j.statusLocked()
	j.mu.Unlock()
	if err := s.store.WriteStatus(id, st); err != nil {
		return st, err
	}
	s.mu.Lock()
	s.pending = append(s.pending, j)
	s.cond.Signal()
	s.mu.Unlock()
	return st, nil
}

// next blocks until a queued job is available; nil means shutdown.
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closing {
			return nil
		}
		for len(s.pending) > 0 {
			j := s.pending[0]
			s.pending = s.pending[1:]
			j.mu.Lock()
			queued := j.state == StateQueued
			j.mu.Unlock()
			if queued {
				return j
			}
		}
		s.cond.Wait()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.exec(j)
	}
}

// exec runs one job from queued to its next persisted state.
func (s *Server) exec(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while pending
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	st := j.statusLocked()
	j.publishLocked(st)
	j.mu.Unlock()
	_ = s.store.WriteStatus(j.id, st)

	s.busy.Add(1)
	out := s.run(ctx, j)
	s.busy.Add(-1)

	// The report is made durable BEFORE the job is published as done:
	// a client that observes done can always fetch the report, and a
	// crash between the two writes recovers as a running job that
	// reruns to the same canonical bytes. A report that cannot be
	// persisted fails the job with a typed store error — done without
	// a durable report would be a lie.
	if !out.canceled && out.jerr == nil && out.report != nil {
		b, err := out.report.Canon()
		if err == nil {
			err = s.store.WriteReport(j.id, b)
		}
		if err != nil {
			s.metrics.Inc("xpdld_store_write_failures_total")
			s.cfg.Logf("xpdld: %s: report write failed: %v", j.id, err)
			out.jerr = storeErr(err)
		}
	}

	j.mu.Lock()
	j.cancel = nil
	preempt := j.preempt
	j.preempt = false
	switch {
	case out.canceled && preempt:
		// Graceful shutdown: back to queued, to be recovered by the
		// next process on this state directory.
		j.state = StateQueued
		s.metrics.Inc("xpdld_jobs_preempted_total")
	case out.canceled:
		j.state = StateCanceled
		j.resumable = true
		j.jerr = &JobError{Kind: "canceled", Detail: "canceled by request"}
		s.metrics.Inc("xpdld_jobs_canceled_total")
	case out.jerr != nil:
		j.state = StateFailed
		j.jerr = out.jerr
		s.metrics.Inc(fmt.Sprintf("xpdld_jobs_failed_total{kind=%q}", out.jerr.Kind))
	default:
		j.state = StateDone
		j.jerr = nil
		s.metrics.Inc("xpdld_jobs_done_total")
	}
	st = j.statusLocked()
	j.publishLocked(st)
	j.mu.Unlock()

	if err := s.store.WriteStatus(j.id, st); err != nil {
		// The terminal state lives in memory and on the event stream; a
		// crash before a later successful write reruns the job, which
		// converges on the same canonical outcome.
		s.metrics.Inc("xpdld_store_write_failures_total")
		s.cfg.Logf("xpdld: %s: status write failed (in-memory state %s stands): %v", j.id, st.State, err)
	}
}

// gauges renders the live (non-monotonic) series.
func (s *Server) gauges() map[string]uint64 {
	g := map[string]uint64{
		"xpdld_workers":                   uint64(s.cfg.Workers),
		"xpdld_workers_busy":              uint64(s.busy.Load()),
		"xpdld_designs_cached":            uint64(s.cache.Len()),
		"xpdld_checkpoint_lag_cycles_max": 0,
	}
	for _, state := range States() {
		g[fmt.Sprintf("xpdld_jobs{state=%q}", state)] = 0
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	var maxLag uint64
	for _, j := range jobs {
		j.mu.Lock()
		g[fmt.Sprintf("xpdld_jobs{state=%q}", j.state)]++
		if j.state == StateRunning {
			if lag := j.progress.Cycle - j.progress.CheckpointCycle; lag > 0 && uint64(lag) > maxLag {
				maxLag = uint64(lag)
			}
		}
		j.mu.Unlock()
	}
	g["xpdld_checkpoint_lag_cycles_max"] = maxLag
	return g
}

// ---------------------------------------------------------------------------
// HTTP API

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON emits a JSON body with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the wire shape of every API error.
type errorBody struct {
	Error JobError `json:"error"`
}

func writeError(w http.ResponseWriter, code int, kind, detail string) {
	writeJSON(w, code, errorBody{Error: JobError{Kind: kind, Detail: detail}})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, ErrSpec, "bad JSON: "+err.Error())
		return
	}
	st, err := s.Submit(sp)
	if err != nil {
		var qe *QuotaError
		var oe *OverloadError
		var je *JobError
		switch {
		case errors.As(err, &qe):
			// Per-tenant quota: this tenant is over ITS limit; the
			// daemon has capacity. 429, no Retry-After — admission
			// reopens when the tenant's own jobs go terminal.
			writeError(w, http.StatusTooManyRequests, ErrQuota, qe.Error())
		case errors.As(err, &oe):
			// Global saturation: everyone backs off. 503 + Retry-After.
			secs := int(oe.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusServiceUnavailable, ErrOverload, oe.Error())
		case errors.As(err, &je) && je.Kind == ErrStore:
			// Transient persistence failure; the submission left no
			// trace, so a retry is safe.
			writeError(w, http.StatusInternalServerError, ErrStore, je.Detail)
		case errors.As(err, &je):
			writeError(w, http.StatusBadRequest, je.Kind, je.Detail)
		default:
			writeError(w, http.StatusInternalServerError, ErrRun, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(order))
	for _, id := range order {
		if j, ok := s.jobByID(id); ok {
			st := j.Status()
			if tenant == "" || st.Spec.Tenant == tenant {
				out = append(out, st)
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrSpec, "no such job "+r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st, err := s.Cancel(j.id)
	if err != nil {
		writeError(w, http.StatusConflict, ErrSpec, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	force := r.URL.Query().Get("force") == "1"
	st, err := s.Resume(j.id, force)
	if err != nil {
		kind := ErrSpec
		if st.State == StateQuarantined {
			kind = ErrQuarantined
		}
		writeError(w, http.StatusConflict, kind, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if st := j.Status(); st.State != StateDone {
		writeError(w, http.StatusConflict, ErrSpec,
			fmt.Sprintf("job %s is %s; reports exist only for done jobs", j.id, st.State))
		return
	}
	b, err := s.store.ReadReport(j.id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrRun, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// handleEvents streams newline-delimited status JSON until the job is
// terminal or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	emit := func(st Status) {
		b, _ := json.Marshal(st)
		_, _ = w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
	ch, cur := j.subscribe()
	emit(cur)
	if ch == nil {
		return
	}
	for {
		select {
		case st, open := <-ch:
			if !open {
				emit(j.Status()) // terminal close: re-read the final word
				return
			}
			emit(st)
			if st.State.Terminal() {
				j.unsubscribe(ch)
				return
			}
		case <-r.Context().Done():
			j.unsubscribe(ch)
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.Render(w, s.gauges())
}

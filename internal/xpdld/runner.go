package xpdld

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"runtime/debug"

	"xpdl/internal/asm"
	"xpdl/internal/bveq"
	"xpdl/internal/cosim"
	"xpdl/internal/designs"
	"xpdl/internal/fault"
	"xpdl/internal/golden"
	"xpdl/internal/sim"
	"xpdl/internal/snap"
)

// outcome is what a runner hands back to the worker loop.
type outcome struct {
	report *Report
	jerr   *JobError
	// canceled marks a run stopped by context cancellation; the
	// resumable checkpoint (when the kind supports one) has already
	// been persisted.
	canceled bool
}

func failed(kind string, err error) outcome {
	return outcome{jerr: &JobError{Kind: kind, Detail: err.Error()}}
}

// run executes one job to an outcome. It never panics the daemon: a
// panic that escapes the simulator's own containment is converted to a
// typed internal error on the job.
func (s *Server) run(ctx context.Context, j *job) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = outcome{jerr: &JobError{
				Kind:   ErrInternal,
				Detail: fmt.Sprintf("runner panic: %v\n%s", r, debug.Stack()),
			}}
		}
	}()
	switch j.spec.Kind {
	case KindCompile:
		return s.runCompile(ctx, j)
	case KindSimulate, KindChaos:
		return s.runSim(ctx, j)
	case KindCosim:
		return s.runCosim(ctx, j)
	case KindBveq:
		return s.runBveq(ctx, j)
	}
	return outcome{jerr: &JobError{Kind: ErrSpec, Detail: "unknown kind " + j.spec.Kind}}
}

// designSource resolves the XPDL source a spec addresses.
func designSource(sp Spec) string {
	if sp.Source != "" {
		return sp.Source
	}
	v, _ := VariantByName(sp.Design)
	return designs.Source(v)
}

// runCompile pushes a design through the front end (via the cache) and
// reports its shape. Pure and idempotent: a crash mid-compile simply
// reruns it.
func (s *Server) runCompile(ctx context.Context, j *job) outcome {
	src := designSource(j.spec)
	d, err := s.cache.Compile(src)
	if err != nil {
		return failed(ErrCompile, err)
	}
	if ctx.Err() != nil {
		return outcome{canceled: true}
	}
	return outcome{report: &Report{
		Kind:       KindCompile,
		Design:     j.spec.Design,
		DesignHash: DesignHash(src),
		Pipes:      len(d.Translations),
	}}
}

// runSim executes a simulate or chaos job: the design's machine runs
// the program in CheckpointEvery-sized chunks, persisting a snapshot at
// every chunk boundary, then cross-checks the drained state against the
// sequential golden model. A fresh invocation resumes from the stored
// checkpoint when one exists — that one code path serves preemption,
// user cancellation and crash recovery alike.
func (s *Server) runSim(ctx context.Context, j *job) outcome {
	sp := j.spec
	v, _ := VariantByName(sp.Design)
	src := designSource(sp)
	d, err := s.cache.Compile(src)
	if err != nil {
		return failed(ErrCompile, err)
	}
	prog, jerr := sp.program()
	if jerr != nil {
		return outcome{jerr: jerr}
	}
	cfg := sim.Config{
		Engine:   sp.Engine,
		Externs:  designs.Externs(),
		MaxTrace: sp.MaxTrace,
	}
	if sp.Kind == KindChaos {
		// Timing faults only — interrupt storms write mip directly,
		// which the golden model cannot mirror (same policy as xpdlsim).
		cfg.Faults = fault.New(fault.Default(sp.Seed))
	}
	m, err := d.NewMachine(cfg)
	if err != nil {
		return failed(ErrCompile, err)
	}
	p := &designs.Processor{Variant: v, Design: d, M: m}
	if err := p.Load(prog); err != nil {
		return failed(ErrAssemble, err)
	}
	if ckpt, ok, err := s.store.ReadCheckpoint(j.id); err != nil {
		return outcome{jerr: classifySnapshotErr(err)}
	} else if ok {
		if err := m.Restore(bytes.NewReader(ckpt)); err != nil {
			return outcome{jerr: classifySnapshotErr(err)}
		}
		s.metrics.Inc("xpdld_jobs_resumed_total")
	} else if err := p.Boot(); err != nil {
		return failed(ErrRun, err)
	}

	for {
		left := sp.MaxCycles - m.Cycle()
		if left <= 0 {
			return outcome{jerr: &JobError{
				Kind:   ErrBudget,
				Detail: fmt.Sprintf("cycle budget of %d exhausted with work in flight", sp.MaxCycles),
			}}
		}
		chunk := left
		if sp.CheckpointEvery > 0 && sp.CheckpointEvery < chunk {
			chunk = sp.CheckpointEvery
		}
		_, err := p.RunCtx(ctx, chunk)
		if err == nil {
			break // pipeline drained — the workload halted and retired
		}
		var ce *sim.CanceledError
		if errors.As(err, &ce) {
			if ce.Snapshot != nil {
				// A failed write here only costs resume granularity: the
				// job resumes from its previous durable checkpoint (or
				// scratch) and still converges on the same report.
				if werr := s.store.WriteCheckpoint(j.id, ce.Snapshot); werr != nil {
					s.checkpointFailed(j, werr)
				} else {
					s.checkpointed(j, m.Cycle(), len(p.Retired()))
				}
			}
			return outcome{canceled: true}
		}
		var cb *sim.CycleBudgetError
		if errors.As(err, &cb) && m.Cycle() < sp.MaxCycles {
			b, serr := m.SaveBytes()
			if serr != nil {
				return failed(ErrRun, serr)
			}
			// Graceful degradation: a checkpoint that cannot be persisted
			// must not fail a healthy running job — keep computing with
			// the previous (stale) checkpoint as the recovery point.
			if werr := s.store.WriteCheckpoint(j.id, b); werr != nil {
				s.checkpointFailed(j, werr)
			} else {
				s.checkpointed(j, m.Cycle(), len(p.Retired()))
			}
			continue
		}
		return classifyRunErr(err)
	}

	rep := &Report{
		Kind:       sp.Kind,
		Design:     sp.Design,
		DesignHash: DesignHash(src),
		Workload:   sp.Workload,
		ProgHash:   progHash(prog),
		Engine:     engineName(sp.Engine),
		Seed:       sp.Seed,
		Cycles:     m.Cycle(),
		Retired:    len(p.Retired()),
		Checksum:   fmt.Sprintf("%#x", p.DMemWord(0)),
		StateCRC:   stateCRC(p),
	}
	if jerr := goldenCheck(p, prog, sp.MaxCycles); jerr != nil {
		return outcome{jerr: jerr}
	}
	rep.GoldenOK = true
	return outcome{report: rep}
}

// goldenCheck replays the program on the one-instruction-at-a-time
// model and diffs all architectural state.
func goldenCheck(p *designs.Processor, prog *asm.Program, maxSteps int) *JobError {
	g := golden.New(prog.Text, prog.Data, designs.DMemWords)
	if err := g.Run(maxSteps); err != nil {
		return &JobError{Kind: ErrGolden, Detail: "golden model: " + err.Error()}
	}
	var diffs []string
	for i := uint32(1); i < 32; i++ {
		if p.Reg(i) != g.Regs[i] {
			diffs = append(diffs, fmt.Sprintf("x%d: pipeline %#x, golden %#x", i, p.Reg(i), g.Regs[i]))
		}
	}
	for i := uint32(0); i < designs.DMemWords; i++ {
		if p.DMemWord(i) != g.DMem[i] {
			diffs = append(diffs, fmt.Sprintf("dmem[%d]: pipeline %#x, golden %#x", i, p.DMemWord(i), g.DMem[i]))
		}
	}
	if len(diffs) > 0 {
		return &JobError{
			Kind:   ErrGolden,
			Detail: fmt.Sprintf("%d architectural mismatches (first: %s)", len(diffs), diffs[0]),
		}
	}
	return nil
}

// runCosim executes a cosim job: the simulator and the emitted Verilog
// in lockstep, with the harness's combined checkpoint as the durable
// unit.
func (s *Server) runCosim(ctx context.Context, j *job) outcome {
	sp := j.spec
	v, _ := VariantByName(sp.Design)
	prog, jerr := sp.program()
	if jerr != nil {
		return outcome{jerr: jerr}
	}
	opts := cosim.Options{
		Variant:   v,
		Program:   prog,
		MaxCycles: sp.MaxCycles,
		Interp:    sp.Engine == "interp",
		// Storm-free chaos (seed 0 disables injection) keeps the golden
		// cross-check meaningful.
		ChaosSeed: sp.Seed,
		Ctx:       ctx,
	}
	if sp.CheckpointEvery > 0 {
		n := 0
		opts.CheckpointEvery = sp.CheckpointEvery
		opts.Checkpoint = func(b []byte) error {
			n++
			// Never propagate a store failure into cosim.Run — it would
			// abort a healthy lockstep run. Degrade to the stale
			// checkpoint instead.
			if err := s.store.WriteCheckpoint(j.id, b); err != nil {
				s.checkpointFailed(j, err)
				return nil
			}
			s.checkpointed(j, n*sp.CheckpointEvery, 0)
			return nil
		}
	}
	if ckpt, ok, err := s.store.ReadCheckpoint(j.id); err != nil {
		return outcome{jerr: classifySnapshotErr(err)}
	} else if ok {
		opts.Resume = ckpt
		s.metrics.Inc("xpdld_jobs_resumed_total")
	}
	res, err := cosim.Run(opts)
	if err != nil {
		var ce *cosim.CanceledError
		if errors.As(err, &ce) {
			if ce.Snapshot != nil {
				if werr := s.store.WriteCheckpoint(j.id, ce.Snapshot); werr != nil {
					s.checkpointFailed(j, werr)
				} else {
					s.checkpointed(j, ce.Cycle, 0)
				}
			}
			return outcome{canceled: true}
		}
		return classifyRunErr(err)
	}
	return outcome{report: &Report{
		Kind:       KindCosim,
		Design:     sp.Design,
		DesignHash: DesignHash(designSource(sp)),
		Workload:   sp.Workload,
		ProgHash:   progHash(prog),
		Engine:     engineName(sp.Engine),
		Seed:       sp.Seed,
		Cycles:     res.Cycles,
		Retired:    res.Retired,
		GoldenOK:   true,
	}}
}

// runBveq executes a bounded-equivalence job. Verify is a pure
// function of (design, bounds) and its canonical report bytes exclude
// engine and wall time, so the job is idempotent: crash recovery
// reruns it and necessarily reproduces the same bytes.
func (s *Server) runBveq(ctx context.Context, j *job) outcome {
	sp := j.spec
	v, _ := VariantByName(sp.Design)
	t, err := bveq.NewVariantTarget(v, sp.BveqWidth, nil)
	if err != nil {
		return failed(ErrCompile, err)
	}
	rep, err := bveq.Verify(t, bveq.Bounds{
		K:      sp.BveqLen,
		Width:  sp.BveqWidth,
		Window: sp.BveqWindow,
		Engine: sp.Engine,
	})
	if err != nil {
		return failed(ErrRun, err)
	}
	if ctx.Err() != nil {
		return outcome{canceled: true}
	}
	canon, err := rep.Canon()
	if err != nil {
		return failed(ErrRun, err)
	}
	return outcome{report: &Report{
		Kind:       KindBveq,
		Design:     sp.Design,
		DesignHash: DesignHash(designSource(sp)),
		Bveq:       canon,
	}}
}

// classifyRunErr maps typed simulator/cosim errors onto job errors.
// Snapshot container errors can surface here too (a cosim resume
// restores inside Run); they keep their snapshot-* identity.
func classifyRunErr(err error) outcome {
	var (
		cb  *sim.CycleBudgetError
		dl  *sim.DeadlockError
		ie  *sim.InternalError
		div *cosim.DivergenceError
		cie *cosim.InternalError
		sve *snap.VersionError
		sce *snap.CorruptError
	)
	switch {
	case errors.As(err, &sve), errors.As(err, &sce):
		return outcome{jerr: classifySnapshotErr(err)}
	case errors.As(err, &cb):
		return failed(ErrBudget, err)
	case errors.As(err, &dl):
		return failed(ErrDeadlock, err)
	case errors.As(err, &ie):
		return failed(ErrInternal, err)
	case errors.As(err, &div):
		return failed(ErrDivergence, err)
	case errors.As(err, &cie):
		return failed(ErrInternal, err)
	}
	return failed(ErrRun, err)
}

// engineName resolves the report's engine label (the spec may leave it
// empty for the default).
func engineName(engine string) string {
	e, err := sim.ParseEngine(engine)
	if err != nil {
		return engine
	}
	return e
}

// progHash content-addresses an assembled program image.
func progHash(p *asm.Program) string {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	var b [4]byte
	for _, w := range p.Text {
		binary.LittleEndian.PutUint32(b[:], w)
		h.Write(b[:])
	}
	h.Write([]byte{0xff})
	for _, w := range p.Data {
		binary.LittleEndian.PutUint32(b[:], w)
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// stateCRC digests the architectural state (registers + data memory).
func stateCRC(p *designs.Processor) string {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	var b [4]byte
	for i := uint32(0); i < 32; i++ {
		binary.LittleEndian.PutUint32(b[:], p.Reg(i))
		h.Write(b[:])
	}
	for i := uint32(0); i < designs.DMemWords; i++ {
		binary.LittleEndian.PutUint32(b[:], p.DMemWord(i))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// checkpointed records a durable checkpoint: progress counters,
// metrics, persisted status, event publication. Durable progress also
// resets the crash-recovery attempt counter — a job that checkpoints
// is not crash-looping, however many times the daemon around it dies.
func (s *Server) checkpointed(j *job, cycle, retired int) {
	s.metrics.Inc("xpdld_checkpoints_written_total")
	j.mu.Lock()
	j.progress.Cycle = cycle
	if retired > 0 {
		j.progress.Retired = retired
	}
	j.progress.CheckpointCycle = cycle
	j.progress.Checkpoints++
	j.attempts = 0
	st := j.statusLocked()
	j.publishLocked(st)
	j.mu.Unlock()
	if err := s.store.WriteStatus(j.id, st); err != nil {
		s.metrics.Inc("xpdld_store_write_failures_total")
		s.cfg.Logf("xpdld: %s: status write failed after checkpoint (continuing): %v", j.id, err)
	}
}

// checkpointFailed records a checkpoint write that could not be made
// durable. The job keeps running: the cost is recovery granularity
// (a crash resumes from the previous checkpoint), never correctness,
// so the right response is a counter and a log line — not a failed
// job.
func (s *Server) checkpointFailed(j *job, err error) {
	s.metrics.Inc("xpdld_checkpoint_write_failures_total")
	s.cfg.Logf("xpdld: %s: checkpoint write failed (continuing with stale checkpoint): %v", j.id, err)
}

package designgen

// Oracle is the sequential specification of a generated design: it
// executes the micro-ISA one instruction at a time with the exact
// capability gating of its DesignSpec (ops the design lacks decode as
// no-ops, the except policy redirects control the same way). A pipeline
// built from d.Source() must match it event-for-event — the gauntlet
// walks the pipeline's retirement trace and replays it here, injecting
// Interrupt() wherever the pipeline retired an interrupt.
type Oracle struct {
	d      *DesignSpec
	imem   []uint32
	PC     uint32
	RF     [RFRegs]uint32
	DMem   []uint32
	ECause uint32
	EEPC   uint32
	Halted bool
}

// Event is one architectural retirement: the instruction (or interrupt)
// at PC, exceptional or not.
type Event struct {
	PC    uint32
	Exc   bool
	Cause uint32
}

// NewOracle builds an oracle over an instruction image (indices beyond
// the image read as zero words, i.e. halts).
func NewOracle(d *DesignSpec, imem []uint32) *Oracle {
	o := &Oracle{d: d, imem: imem}
	if d.HasDmem {
		o.DMem = make([]uint32, DMemWords)
	}
	return o
}

// alu mirrors the generated compute mux exactly; it is also the Go
// implementation bound to the xalu extern, so inline and extern designs
// share one definition and cannot drift apart.
func alu(op int, a, b, imm uint32) uint32 {
	switch op {
	case opAdd:
		return a + b
	case opSub:
		return a - b
	case opXor:
		return a ^ b
	case opAddi:
		return a + imm
	case opSeti:
		return imm
	default:
		return a
	}
}

func (o *Oracle) fetch(pc uint32) uint32 {
	if int(pc) < len(o.imem) {
		return o.imem[pc]
	}
	return 0
}

// Step executes the instruction at PC (no interrupt pending) and
// reports the retirement event. Calling Step on a halted oracle returns
// a zero event with Halted still set — the gauntlet treats that as a
// trace divergence.
func (o *Oracle) Step() Event {
	if o.Halted {
		return Event{}
	}
	pc := o.PC
	w := o.fetch(pc)
	op, rd := fOp(w), fRd(w)
	a, b := o.RF[fR1(w)], o.RF[fR2(w)]
	imm := fImm(w)
	npc := (pc + 1) & pcMask
	exc, cause := false, uint32(0)
	switch op {
	case opHalt:
		o.Halted = true
	case opAdd, opSub, opXor, opAddi, opSeti:
		o.RF[rd] = alu(op, a, b, imm)
	case opLd:
		if o.d.HasDmem {
			o.RF[rd] = o.DMem[(a+imm)&(DMemWords-1)]
		}
	case opSt:
		if o.d.HasDmem {
			o.DMem[(a+imm)&(DMemWords-1)] = b
		}
	case opBnz:
		if a != 0 {
			npc = imm & pcMask
		}
	case opJr:
		npc = (a + imm) & pcMask
	case opThn:
		if o.d.HasExcept() && a != 0 {
			exc, cause = true, imm&7
		}
	case opCsrc:
		if o.d.Vols {
			o.RF[rd] = o.ECause
		}
	case opIll:
		if o.d.HasExcept() {
			exc, cause = true, 1
		}
	case opCsre:
		if o.d.Vols {
			o.RF[rd] = o.EEPC
		}
	}
	if exc {
		o.except(cause, pc)
		return Event{PC: pc, Exc: true, Cause: cause}
	}
	if !o.Halted {
		o.PC = npc
	}
	return Event{PC: pc}
}

// Interrupt performs the interrupt transition: the instruction at PC is
// canceled before executing and the except policy redirects control.
func (o *Oracle) Interrupt() Event {
	pc := o.PC
	o.except(causeInt, pc)
	return Event{PC: pc, Exc: true, Cause: causeInt}
}

// except mirrors the generated except block.
func (o *Oracle) except(cause, epc uint32) {
	if o.d.Vols {
		o.ECause = cause
		o.EEPC = epc
	}
	switch o.d.Except {
	case ExcHalt:
		o.Halted = true
	case ExcSkip:
		if cause == causeInt {
			o.PC = epc
		} else {
			o.PC = (epc + 1) & pcMask
		}
	case ExcHandler:
		o.PC = HBase
	}
}

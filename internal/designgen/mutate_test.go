package designgen

import "testing"

// TestMutantsRejected: every rule-breaking mutant must apply to a
// healthy share of the generated population and be rejected with
// exactly the diagnostic code it targets, every time.
func TestMutantsRejected(t *testing.T) {
	for _, m := range Mutants {
		applied := 0
		for seed := uint64(0); seed < 60; seed++ {
			d := Generate(seed)
			app, ok, got := CheckMutant(d, m)
			if !app {
				continue
			}
			applied++
			if !ok {
				t.Errorf("%s on seed %d (%s): want %s, checker said %v", m.Name, seed, d.Name(), m.Code, got)
			}
		}
		if applied < 5 {
			t.Errorf("%s: applied to only %d/60 designs — mutant is rotting", m.Name, applied)
		}
	}
}

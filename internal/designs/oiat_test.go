package designs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xpdl/internal/asm"
	"xpdl/internal/golden"
	"xpdl/internal/riscv"
	"xpdl/internal/sim"
)

// genProgram builds a random but always-terminating RV32IM program that
// may fault, trap, and execute CSR instructions. The trap handler advances
// mepc past the offending instruction and returns, so every synchronous
// exception is survivable. Register conventions: x5..x15 are the random
// pool, a6 (x16) holds generated addresses, s11 (x27) is handler scratch.
func genProgram(rng *rand.Rand, withInterrupts bool) string {
	var b strings.Builder
	reg := func() string { return fmt.Sprintf("x%d", 5+rng.Intn(11)) }

	b.WriteString("        li   t4, 0\n") // t4 = x29 reserved zero-ish
	b.WriteString("        la   t4, handler\n")
	b.WriteString("        csrw mtvec, t4\n")
	if withInterrupts {
		b.WriteString("        li   t4, 0x888\n")
		b.WriteString("        csrw mie, t4\n")
		b.WriteString("        csrrsi zero, mstatus, 8\n")
	}
	// Seed the pool with values.
	for i := 5; i <= 15; i++ {
		fmt.Fprintf(&b, "        li   x%d, %d\n", i, rng.Int31n(1<<20)-1<<19)
	}

	aluOps := []string{"add", "sub", "xor", "or", "and", "sll", "srl", "sra",
		"slt", "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu"}
	immOps := []string{"addi", "xori", "ori", "andi", "slti", "sltiu"}

	segments := 25 + rng.Intn(25)
	for i := 0; i < segments; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "        %s %s, %s, %s\n",
				aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
		case 3, 4:
			fmt.Fprintf(&b, "        %s %s, %s, %d\n",
				immOps[rng.Intn(len(immOps))], reg(), reg(), rng.Int31n(4096)-2048)
		case 5:
			fmt.Fprintf(&b, "        %si %s, %s, %d\n",
				[]string{"sll", "srl", "sra"}[rng.Intn(3)], reg(), reg(), rng.Intn(32))
		case 6: // aligned word store+load
			addr := 4 * (16 + rng.Intn(1000))
			fmt.Fprintf(&b, "        li   a6, %d\n", addr)
			fmt.Fprintf(&b, "        sw   %s, 0(a6)\n", reg())
			fmt.Fprintf(&b, "        lw   %s, 0(a6)\n", reg())
		case 7: // byte/half traffic
			addr := 64 + rng.Intn(4000)
			op := []string{"sb", "sh"}[rng.Intn(2)]
			if op == "sh" {
				addr &^= 1
			}
			fmt.Fprintf(&b, "        li   a6, %d\n", addr)
			fmt.Fprintf(&b, "        %s   %s, 0(a6)\n", op, reg())
			fmt.Fprintf(&b, "        %s  %s, 0(a6)\n",
				[]string{"lbu", "lb"}[rng.Intn(2)], reg())
		case 8: // forward branch over one segment
			fmt.Fprintf(&b, "        b%s %s, %s, fwd%d\n",
				[]string{"eq", "ne", "lt", "ge", "ltu", "geu"}[rng.Intn(6)],
				reg(), reg(), i)
			fmt.Fprintf(&b, "        addi %s, %s, 1\n", reg(), reg())
			fmt.Fprintf(&b, "fwd%d:  addi %s, %s, 2\n", i, reg(), reg())
		case 9: // bounded backward loop
			n := 2 + rng.Intn(4)
			fmt.Fprintf(&b, "        li   t5, %d\n", n)
			fmt.Fprintf(&b, "lp%d:   add  %s, %s, %s\n", i, reg(), reg(), reg())
			fmt.Fprintf(&b, "        addi t5, t5, -1\n")
			fmt.Fprintf(&b, "        bnez t5, lp%d\n", i)
		case 10: // CSR traffic on mscratch
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "        csrw mscratch, %s\n", reg())
			case 1:
				fmt.Fprintf(&b, "        csrr %s, mscratch\n", reg())
			case 2:
				fmt.Fprintf(&b, "        csrrs %s, mscratch, %s\n", reg(), reg())
			}
		case 11: // a synchronous exception
			switch rng.Intn(3) {
			case 0:
				b.WriteString("        ecall\n")
			case 1:
				b.WriteString("        .word 0xFFFFFFFF\n")
			case 2: // faulting access: far out of range or misaligned
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "        li   a6, %d\n", 0x10000+rng.Intn(1<<12))
				} else {
					fmt.Fprintf(&b, "        li   a6, %d\n", 4*(16+rng.Intn(64))+1+rng.Intn(3))
				}
				fmt.Fprintf(&b, "        %s   %s, 0(a6)\n",
					[]string{"lw", "sw"}[rng.Intn(2)], reg())
			}
		}
	}
	b.WriteString("        ebreak\n")
	b.WriteString("handler:\n")
	b.WriteString("        csrr s11, mepc\n")
	b.WriteString("        addi s11, s11, 4\n")
	b.WriteString("        csrw mepc, s11\n")
	b.WriteString("        mret\n")
	return b.String()
}

// Interrupt handlers must NOT advance mepc; use a separate handler that
// dispatches on mcause bit 31.
func genInterruptibleProgram(rng *rand.Rand) string {
	src := genProgram(rng, true)
	return strings.Replace(src, `handler:
        csrr s11, mepc
        addi s11, s11, 4
        csrw mepc, s11
        mret
`, `handler:
        csrr s11, mcause
        bltz s11, intr      # interrupts have mcause bit 31 set
        csrr s11, mepc
        addi s11, s11, 4
        csrw mepc, s11
        mret
intr:   lw   s11, 12(zero)
        addi s11, s11, 1
        sw   s11, 12(zero)
        mret
`, 1)
}

// TestOIATFuzz runs random exception-heavy programs on the full pipeline
// and the golden model, requiring identical architecture and traces —
// the §4.3 OIAT argument, tested empirically.
func TestOIATFuzz(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		src := genProgram(rng, false)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", i, err, src)
		}
		g := golden.New(prog.Text, prog.Data, DMemWords)
		if err := g.Run(200000); err != nil {
			t.Fatalf("seed %d: golden: %v", i, err)
		}
		if !g.Halted {
			t.Fatalf("seed %d: golden did not halt", i)
		}

		p, err := Build(All)
		if err != nil {
			t.Fatal(err)
		}
		p.Load(prog)
		p.Boot()
		if _, err := p.Run(1200000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", i, err)
		}
		if p.M.InFlight() != 0 {
			t.Fatalf("seed %d: pipeline did not drain", i)
		}
		compareArch(t, p, g)
		compareTrace(t, p, g)
		if t.Failed() {
			t.Fatalf("seed %d diverged; program:\n%s", i, src)
		}
	}
}

// TestOIATFuzzWithInterrupts additionally injects an asynchronous
// interrupt at a random cycle and replays the golden model at the same
// instruction boundary.
func TestOIATFuzzWithInterrupts(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		src := genInterruptibleProgram(rng)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", i, err)
		}

		p, err := Build(All)
		if err != nil {
			t.Fatal(err)
		}
		p.Load(prog)
		p.Boot()
		fireAt := 30 + rng.Intn(300)
		bit := []uint32{riscv.MIPMTIP, riscv.MIPMSIP, riscv.MIPMEIP}[rng.Intn(3)]
		p.M.OnCycle(func(m *sim.Machine) {
			if m.Cycle() == fireAt {
				p.RaiseInterrupt(bit)
			}
		})
		if _, err := p.Run(1200000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", i, err)
		}
		if p.M.InFlight() != 0 {
			t.Fatalf("seed %d: pipeline did not drain", i)
		}

		// Find the interrupt boundary the pipeline chose (if the program
		// ended before the interrupt was enabled/taken, none exists).
		boundary := -1
		for k, r := range p.Retired() {
			if r.Exceptional && r.EArgs[0].Uint() == KInt {
				boundary = k
				break
			}
		}
		g := golden.New(prog.Text, prog.Data, DMemWords)
		for steps := 0; !g.Halted && steps < 400000; steps++ {
			if boundary >= 0 && len(g.Trace) == boundary {
				g.RaiseInterrupt(bit)
			}
			if err := g.Step(); err != nil {
				t.Fatalf("seed %d: golden: %v", i, err)
			}
		}
		if !g.Halted {
			t.Fatalf("seed %d: golden did not halt", i)
		}
		compareArch(t, p, g)
		compareTrace(t, p, g)
		if t.Failed() {
			t.Fatalf("seed %d (interrupt %#x at cycle %d, boundary %d) diverged; program:\n%s",
				i, bit, fireAt, boundary, src)
		}
	}
}

// mustAsm assembles or fails the test.
func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestOIATFuzzBaseline runs exception-free random programs on the
// baseline (no final blocks at all): OIAT must hold without the
// exception machinery too.
func TestOIATFuzzBaseline(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(3000 + i)))
		src := genCleanProgram(rng)
		prog := mustAsm(t, src)
		g := golden.New(prog.Text, prog.Data, DMemWords)
		if err := g.Run(200000); err != nil {
			t.Fatalf("seed %d: golden: %v", i, err)
		}
		if !g.Halted {
			t.Fatalf("seed %d: golden did not halt", i)
		}
		p, err := Build(Base)
		if err != nil {
			t.Fatal(err)
		}
		p.Load(prog)
		p.Boot()
		if _, err := p.Run(1200000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", i, err)
		}
		for r := uint32(1); r < 32; r++ {
			if p.Reg(r) != g.Regs[r] {
				t.Errorf("seed %d: x%d = %#x, golden %#x", i, r, p.Reg(r), g.Regs[r])
			}
		}
		for a := uint32(0); a < DMemWords; a++ {
			if p.DMemWord(a) != g.DMem[a] {
				t.Errorf("seed %d: dmem[%d] = %#x, golden %#x", i, a, p.DMemWord(a), g.DMem[a])
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged:\n%s", i, src)
		}
	}
}

// genCleanProgram is genProgram restricted to behaviours the baseline
// supports: no traps, no CSRs, no faulting accesses.
func genCleanProgram(rng *rand.Rand) string {
	var b strings.Builder
	reg := func() string { return fmt.Sprintf("x%d", 5+rng.Intn(11)) }
	for i := 5; i <= 15; i++ {
		fmt.Fprintf(&b, "        li   x%d, %d\n", i, rng.Int31n(1<<20)-1<<19)
	}
	aluOps := []string{"add", "sub", "xor", "or", "and", "sll", "srl", "sra",
		"slt", "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu"}
	segments := 30 + rng.Intn(30)
	for i := 0; i < segments; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			fmt.Fprintf(&b, "        %s %s, %s, %s\n",
				aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
		case 2:
			addr := 4 * (8 + rng.Intn(1000))
			fmt.Fprintf(&b, "        li   a6, %d\n", addr)
			fmt.Fprintf(&b, "        sw   %s, 0(a6)\n", reg())
			fmt.Fprintf(&b, "        lw   %s, 0(a6)\n", reg())
		case 3:
			fmt.Fprintf(&b, "        b%s %s, %s, fwd%d\n",
				[]string{"eq", "ne", "ltu", "geu"}[rng.Intn(4)], reg(), reg(), i)
			fmt.Fprintf(&b, "        addi %s, %s, 1\n", reg(), reg())
			fmt.Fprintf(&b, "fwd%d:  addi %s, %s, 2\n", i, reg(), reg())
		case 4:
			n := 2 + rng.Intn(4)
			fmt.Fprintf(&b, "        li   t5, %d\n", n)
			fmt.Fprintf(&b, "lp%d:   add  %s, %s, %s\n", i, reg(), reg(), reg())
			fmt.Fprintf(&b, "        addi t5, t5, -1\n")
			fmt.Fprintf(&b, "        bnez t5, lp%d\n", i)
		}
	}
	b.WriteString("        ebreak\n")
	return b.String()
}

// TestOIATFuzzCSRVariant drives the CSR-only variant with random
// programs mixing ALU/memory/branch traffic and mscratch CSR operations
// (no traps): CSR instructions retire exceptionally in the pipeline but
// must stay architecturally identical to the sequential model.
func TestOIATFuzzCSRVariant(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(5000 + i)))
		src := genCSRProgram(rng)
		prog := mustAsm(t, src)
		g := golden.New(prog.Text, prog.Data, DMemWords)
		if err := g.Run(200000); err != nil {
			t.Fatalf("seed %d: golden: %v", i, err)
		}
		if !g.Halted {
			t.Fatalf("seed %d: golden did not halt", i)
		}
		p, err := Build(CSR)
		if err != nil {
			t.Fatal(err)
		}
		p.Load(prog)
		p.Boot()
		if _, err := p.Run(1200000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", i, err)
		}
		if p.M.InFlight() != 0 {
			t.Fatalf("seed %d: did not drain", i)
		}
		compareArch(t, p, g)
		compareTrace(t, p, g)
		if t.Failed() {
			t.Fatalf("seed %d diverged:\n%s", i, src)
		}
	}
}

// genCSRProgram mixes clean computation with CSR traffic over the whole
// implemented CSR file (safe on the CSR variant: no trap machinery).
func genCSRProgram(rng *rand.Rand) string {
	base := genCleanProgram(rng)
	// Interleave CSR ops by appending a CSR-heavy epilogue before ebreak.
	csrs := []string{"mscratch", "mtvec", "mepc", "mcause", "mtval"}
	var b strings.Builder
	reg := func() string { return fmt.Sprintf("x%d", 5+rng.Intn(11)) }
	for i := 0; i < 12; i++ {
		c := csrs[rng.Intn(len(csrs))]
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "        csrw %s, %s\n", c, reg())
		case 1:
			fmt.Fprintf(&b, "        csrr %s, %s\n", reg(), c)
		case 2:
			fmt.Fprintf(&b, "        csrrs %s, %s, %s\n", reg(), c, reg())
		case 3:
			fmt.Fprintf(&b, "        csrrc %s, %s, %s\n", reg(), c, reg())
		case 4:
			fmt.Fprintf(&b, "        csrrwi %s, %s, %d\n", reg(), c, rng.Intn(32))
		}
	}
	return strings.Replace(base, "        ebreak\n", b.String()+"        ebreak\n", 1)
}

package check

import (
	"xpdl/internal/pdl/ast"
	"xpdl/internal/pdl/token"
)

// exprType type-checks an expression in the pipeline context and returns
// its type. Errors are reported on the checker; the returned type on error
// is a best-effort placeholder so checking can continue.
func (pc *pipeChecker) exprType(e ast.Expr) ast.Type {
	return pc.exprTypeEx(e, false)
}

// exprTypeAllowSync permits a sync-read MemRead at the top level; only the
// direct RHS of a latched assignment may contain one.
func (pc *pipeChecker) exprTypeAllowSync(e ast.Expr) ast.Type {
	return pc.exprTypeEx(e, true)
}

func (pc *pipeChecker) exprTypeEx(e ast.Expr, allowSync bool) ast.Type {
	c := pc.c
	switch n := e.(type) {
	case *ast.IntLit:
		return ast.UIntType0(n.Width)
	case *ast.BoolLit:
		return ast.BoolType()
	case *ast.Ident:
		return pc.identType(n)
	case *ast.Unary:
		t := pc.exprTypeEx(n.X, false)
		switch n.Op {
		case ast.OpNot:
			if !isBoolish(t) {
				c.errorf(n.ExprPos(), "E-TYPE", "operand of ! must be bool, got %s", t)
			}
			return ast.BoolType()
		case ast.OpBNot, ast.OpNeg:
			if t.Kind != ast.TUInt {
				c.errorf(n.ExprPos(), "E-TYPE", "operand of %s must be uint, got %s",
					map[ast.UnOp]string{ast.OpBNot: "~", ast.OpNeg: "-"}[n.Op], t)
				return ast.UIntType(1)
			}
			return t
		}
	case *ast.Binary:
		return pc.binaryType(n)
	case *ast.Ternary:
		ct := pc.exprTypeEx(n.Cond, false)
		if !isBoolish(ct) {
			c.errorf(n.ExprPos(), "E-TYPE", "ternary condition must be bool, got %s", ct)
		}
		tt := pc.exprTypeEx(n.Then, false)
		et := pc.exprTypeEx(n.Else, false)
		switch {
		case tt.Kind == ast.TUInt && tt.Width == 0:
			return et
		case et.Kind == ast.TUInt && et.Width == 0:
			return tt
		case !tt.Equal(et):
			c.errorf(n.ExprPos(), "E-TYPE", "ternary arms disagree: %s vs %s", tt, et)
		}
		return tt
	case *ast.CallExpr:
		return pc.callType(n)
	case *ast.MemRead:
		return pc.memReadType(n, allowSync)
	case *ast.Slice:
		return pc.sliceType(n)
	case *ast.FieldAccess:
		xt := pc.exprTypeEx(n.X, false)
		if xt.Kind != ast.TRecord {
			c.errorf(n.ExprPos(), "E-TYPE", "field access on non-record type %s", xt)
			return ast.UIntType(1)
		}
		ft, ok := xt.FieldType(n.Field)
		if !ok {
			c.errorf(n.ExprPos(), "E-UNDEF", "record has no field %q", n.Field)
			return ast.UIntType(1)
		}
		return ft
	}
	c.errorf(e.ExprPos(), "E-INTERNAL", "internal expression %T is not allowed in source programs", e)
	return ast.UIntType(1)
}

func (pc *pipeChecker) identType(n *ast.Ident) ast.Type {
	c := pc.c
	name := n.Name
	if t, ok := pc.vars[name]; ok {
		pc.locals.used[name] = true
		if avail := pc.availStage[name]; avail > pc.stage {
			c.errorf(n.ExprPos(), "E-AVAIL", "%s is not available until %s (latched values are visible from the next stage)", name, fmtAvail(avail))
		}
		return t
	}
	if cv, ok := c.info.Consts[name]; ok {
		c.usedConsts[name] = true
		if cv.IsBool {
			return ast.BoolType()
		}
		return ast.UIntType0(cv.Width)
	}
	if v := c.vols[name]; v != nil {
		c.usedVols[name] = true
		pc.checkVolRead(name, n.ExprPos())
		return v.Elem
	}
	if c.mems[name] != nil {
		c.usedMems[name] = true
		c.errorf(n.ExprPos(), "E-TYPE", "memory %s must be read with an index", name)
		return ast.UIntType(1)
	}
	c.errorf(n.ExprPos(), "E-UNDEF", "undefined name %q", name)
	return ast.UIntType(1)
}

// checkVolRead enforces the §3.6 placement rule: volatile reads only in
// non-speculative, in-order regions (final blocks, or body stages at or
// after the spec_barrier when the pipeline speculates).
func (pc *pipeChecker) checkVolRead(name string, pos token.Pos) {
	if !pc.mods[name] {
		pc.c.errorf(pos, "E-CONNECT", "volatile %s is not connected to pipe %s", name, pc.pipe.Name)
		return
	}
	if pc.region != regBody {
		return // final blocks are always non-speculative and in-order
	}
	if pc.specUsed && (!pc.sawBarrier || pc.stage < pc.info.BarrierStage) {
		pc.c.errorf(pos, "E-VOL-READ", "volatile %s read in a speculative region; place the read after spec_barrier (§3.6)", name)
	}
}

func (pc *pipeChecker) binaryType(n *ast.Binary) ast.Type {
	c := pc.c
	lt := pc.exprTypeEx(n.L, false)
	rt := pc.exprTypeEx(n.R, false)
	switch n.Op {
	case ast.OpLAnd, ast.OpLOr:
		if !isBoolish(lt) || !isBoolish(rt) {
			c.errorf(n.ExprPos(), "E-TYPE", "operands of %s must be bool, got %s and %s", n.Op, lt, rt)
		}
		return ast.BoolType()
	case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		if !comparable2(lt, rt) {
			c.errorf(n.ExprPos(), "E-TYPE", "cannot compare %s with %s", lt, rt)
		}
		return ast.BoolType()
	case ast.OpShl, ast.OpShr:
		if lt.Kind != ast.TUInt || rt.Kind != ast.TUInt {
			c.errorf(n.ExprPos(), "E-TYPE", "shift operands must be uint, got %s and %s", lt, rt)
			return ast.UIntType(1)
		}
		return lt
	default: // arithmetic and bitwise
		if lt.Kind != ast.TUInt || rt.Kind != ast.TUInt {
			c.errorf(n.ExprPos(), "E-TYPE", "operands of %s must be uint, got %s and %s", n.Op, lt, rt)
			return ast.UIntType(1)
		}
		if lt.Width != 0 && rt.Width != 0 && lt.Width != rt.Width {
			c.errorf(n.ExprPos(), "E-TYPE", "width mismatch in %s: uint<%d> vs uint<%d>", n.Op, lt.Width, rt.Width)
		}
		if lt.Width == 0 {
			return rt
		}
		return lt
	}
}

func comparable2(a, b ast.Type) bool {
	if a.Kind == ast.TUInt && b.Kind == ast.TUInt {
		return a.Width == 0 || b.Width == 0 || a.Width == b.Width
	}
	if isBoolish(a) && isBoolish(b) {
		return true
	}
	return false
}

// builtinSigs lists the builtin combinational functions.
var builtinArity = map[string]int{
	"ext": 2, "sext": 2, // widen/narrow
	"lts": 2, "les": 2, "gts": 2, "ges": 2, // signed compares
	"shra": 2,            // arithmetic shift right
	"divs": 2, "rems": 2, // signed division
	"mulfull": 2, // full-width product
	// cat is variadic and handled separately.
}

func (pc *pipeChecker) callType(n *ast.CallExpr) ast.Type {
	c := pc.c
	// Builtins.
	if n.Name == "cat" {
		if len(n.Args) < 2 {
			c.errorf(n.ExprPos(), "E-CALL", "cat needs at least two operands")
			return ast.UIntType(1)
		}
		width := 0
		for _, a := range n.Args {
			t := pc.exprTypeEx(a, false)
			if t.Kind != ast.TUInt && t.Kind != ast.TBool {
				c.errorf(n.ExprPos(), "E-TYPE", "cat operand has type %s; need sized uint or bool", t)
				return ast.UIntType(1)
			}
			if t.Kind == ast.TUInt && t.Width == 0 {
				c.errorf(n.ExprPos(), "E-TYPE", "cat operands must have explicit widths (use sized literals)")
				return ast.UIntType(1)
			}
			width += t.BitWidth()
		}
		if width > 64 {
			c.errorf(n.ExprPos(), "E-TYPE", "cat result is %d bits; the maximum is 64", width)
			width = 64
		}
		return ast.UIntType(width)
	}
	if arity, isBuiltin := builtinArity[n.Name]; isBuiltin {
		if len(n.Args) != arity {
			c.errorf(n.ExprPos(), "E-CALL", "%s takes %d arguments, got %d", n.Name, arity, len(n.Args))
			return ast.UIntType(1)
		}
		switch n.Name {
		case "ext", "sext":
			t := pc.exprTypeEx(n.Args[0], false)
			if t.Kind != ast.TUInt {
				c.errorf(n.ExprPos(), "E-TYPE", "%s needs a uint operand, got %s", n.Name, t)
			}
			w, ok := c.constInt(n.Args[1])
			if !ok || w < 1 || w > 64 {
				c.errorf(n.ExprPos(), "E-CONST", "%s width must be a constant between 1 and 64", n.Name)
				return ast.UIntType(1)
			}
			return ast.UIntType(int(w))
		case "lts", "les", "gts", "ges":
			lt := pc.exprTypeEx(n.Args[0], false)
			rt := pc.exprTypeEx(n.Args[1], false)
			if !comparable2(lt, rt) {
				c.errorf(n.ExprPos(), "E-TYPE", "cannot compare %s with %s", lt, rt)
			}
			return ast.BoolType()
		case "shra", "divs", "rems":
			lt := pc.exprTypeEx(n.Args[0], false)
			pc.exprTypeEx(n.Args[1], false)
			return lt
		case "mulfull":
			lt := pc.exprTypeEx(n.Args[0], false)
			rt := pc.exprTypeEx(n.Args[1], false)
			if lt.Kind != ast.TUInt || rt.Kind != ast.TUInt {
				c.errorf(n.ExprPos(), "E-TYPE", "mulfull needs uint operands")
				return ast.UIntType(1)
			}
			w := lt.Width * 2
			if w > 64 {
				w = 64
			}
			if w == 0 {
				w = 64
			}
			return ast.UIntType(w)
		}
	}

	// Extern or in-language function.
	var params []ast.Param
	var result ast.Type
	if ex := c.externs[n.Name]; ex != nil {
		c.usedExterns[n.Name] = true
		params, result = ex.Params, ex.Result
	} else if fn := c.funcs[n.Name]; fn != nil {
		c.usedFuncs[n.Name] = true
		params, result = fn.Params, fn.Result
	} else {
		c.errorf(n.ExprPos(), "E-UNDEF", "call to undefined function %q", n.Name)
		return ast.UIntType(1)
	}
	if len(n.Args) != len(params) {
		c.errorf(n.ExprPos(), "E-CALL", "%s takes %d arguments, got %d", n.Name, len(params), len(n.Args))
		return result
	}
	for i, a := range n.Args {
		t := pc.exprTypeEx(a, false)
		if !assignable(params[i].Type, t) {
			c.errorf(n.ExprPos(), "E-TYPE", "%s argument %d has type %s, parameter is %s", n.Name, i, t, params[i].Type)
		}
	}
	return result
}

func (pc *pipeChecker) memReadType(n *ast.MemRead, allowSync bool) ast.Type {
	c := pc.c
	m := c.mems[n.Mem]
	if m == nil {
		c.errorf(n.ExprPos(), "E-UNDEF", "unknown memory %q", n.Mem)
		return ast.UIntType(1)
	}
	c.usedMems[n.Mem] = true
	if !pc.mods[n.Mem] {
		c.errorf(n.ExprPos(), "E-CONNECT", "memory %s is not connected to pipe %s", n.Mem, pc.pipe.Name)
	}
	if !m.CombRead && !allowSync {
		c.errorf(n.ExprPos(), "E-SYNC-READ", "memory %s is sync-read; its value must be latched with <- before use", n.Mem)
	}
	if !m.CombRead && pc.region == regExcept && pc.stage == ExceptBase+pc.info.ExceptStages-1 {
		c.errorf(n.ExprPos(), "E-R1B", "Rule 1b: the last except stage cannot issue asynchronous memory reads")
	}
	pc.exprTypeEx(n.Index, false)

	// Reads of a locked memory require a reservation covering the key.
	// Basic and renaming locks additionally require ownership (block);
	// the bypass queue forwards pending writes to reserved readers before
	// they own the lock (§3.4), so a reservation suffices there.
	if m.Lock != ast.LockNone {
		key := lockKey(n.Mem, n.Index)
		ls := pc.locks[key]
		if ls == nil {
			ls = pc.locks[n.Mem]
		}
		switch {
		case ls == nil || ls.released:
			c.errorf(n.ExprPos(), "E-LOCK-NORESERVE", "read of %s requires a lock reservation (reserve/acquire %s first)", key, key)
		case !ls.blocked && m.Lock != ast.LockBypass:
			c.errorf(n.ExprPos(), "E-LOCK-UNOWNED", "read of %s requires an owned lock (acquire/block %s first)", key, key)
		}
	}
	return m.Elem
}

func (pc *pipeChecker) sliceType(n *ast.Slice) ast.Type {
	c := pc.c
	xt := pc.exprTypeEx(n.X, false)
	if xt.Kind != ast.TUInt {
		c.errorf(n.ExprPos(), "E-TYPE", "slicing needs a uint operand, got %s", xt)
		return ast.UIntType(1)
	}
	hi, okH := c.constInt(n.Hi)
	lo, okL := c.constInt(n.Lo)
	if !okH || !okL {
		c.errorf(n.ExprPos(), "E-CONST", "slice bounds must be compile-time constants")
		return ast.UIntType(1)
	}
	if hi < lo {
		c.errorf(n.ExprPos(), "E-TYPE", "inverted slice [%d:%d]", hi, lo)
		return ast.UIntType(1)
	}
	if xt.Width != 0 && int(hi) >= xt.Width {
		c.errorf(n.ExprPos(), "E-TYPE", "slice [%d:%d] exceeds uint<%d>", hi, lo, xt.Width)
		return ast.UIntType(1)
	}
	return ast.UIntType(int(hi-lo) + 1)
}

// checkFunc validates an in-language combinational function: straight-line
// combinational assignments ending in a return of the declared type.
func (c *checker) checkFunc(f *ast.FuncDecl) {
	pc := &pipeChecker{
		c:          c,
		pipe:       &ast.PipeDecl{Name: "func " + f.Name, Pos: f.Pos},
		vars:       make(map[string]ast.Type),
		availStage: make(map[string]int),
		mods:       map[string]bool{},
		locks:      map[string]*lockState{},
		info:       &PipeInfo{BarrierStage: -1, LockedMems: map[string]bool{}},
		locals:     newLocalUsage("func " + f.Name),
	}
	c.pipeLocals = append(c.pipeLocals, pc.locals)
	for _, p := range f.Params {
		pc.defineVar(p.Name, p.Type, 0, f.Pos)
	}
	sawReturn := false
	for i, s := range f.Body {
		switch n := s.(type) {
		case *ast.Assign:
			if n.Latched {
				c.errorf(n.StmtPos(), "E-FUNC", "functions are combinational; use = not <-")
				continue
			}
			t := pc.exprType(n.RHS)
			pc.defineLocal(n.Name, t, 0, false, n.StmtPos())
		case *ast.If:
			pc.stmt(n)
		case *ast.Return:
			sawReturn = true
			if i != len(f.Body)-1 {
				c.errorf(n.StmtPos(), "E-FUNC", "return must be the last statement of function %s", f.Name)
			}
			t := pc.exprType(n.Value)
			if !assignable(f.Result, t) {
				c.errorf(n.StmtPos(), "E-FUNC", "function %s returns %s, declared %s", f.Name, t, f.Result)
			}
		default:
			c.errorf(s.StmtPos(), "E-FUNC", "statement %T is not allowed in a combinational function", s)
		}
	}
	if !sawReturn {
		c.errorf(f.Pos, "E-FUNC", "function %s has no return", f.Name)
	}
}

package synth

import (
	"xpdl/internal/check"
	"xpdl/internal/ir"
)

// LintCostModel derives the checker's stage-cost lint model from this
// package's technology constants, so xpdlvet and the synthesis report
// agree on what an operation costs. (check cannot import synth — the
// dependency runs synth -> ir -> check — hence the translation here.)
func LintCostModel(t Tech) *check.CostModel {
	classes := map[ir.OpClass]check.CostOp{
		ir.OpAdd: check.CostAdd, ir.OpMul: check.CostMul, ir.OpDiv: check.CostDiv,
		ir.OpCmp: check.CostCmp, ir.OpLogic: check.CostLogic, ir.OpShift: check.CostShift,
		ir.OpMux: check.CostMux, ir.OpMemRd: check.CostMemRd, ir.OpMemWr: check.CostMemWr,
		ir.OpLock: check.CostLock, ir.OpSpec: check.CostSpec, ir.OpCtl: check.CostCtl,
	}
	m := &check.CostModel{
		ClockOverheadNS: t.ClockOverhead,
		OpNS:            make(map[check.CostOp]float64, len(classes)),
		ExternNS:        make(map[string]float64, len(t.ExternDelay)),
	}
	var maxExtern float64
	for cls, op := range classes {
		m.OpNS[op] = t.DelayPerClass[cls]
	}
	for name, d := range t.ExternDelay {
		m.ExternNS[name] = d
		if d > maxExtern {
			maxExtern = d
		}
	}
	// An extern the tables do not know is assumed as slow as the slowest
	// known one; underestimating would silence the lint exactly where the
	// designer has the least visibility.
	m.DefaultExternNS = maxExtern
	return m
}

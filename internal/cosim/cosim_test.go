package cosim

import (
	"errors"
	"strings"
	"testing"

	"xpdl/internal/asm"
	"xpdl/internal/designs"
	"xpdl/internal/riscv"
	"xpdl/internal/synth"
	"xpdl/internal/workloads"
)

func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func run(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", opts.Variant, err)
	}
	return res
}

// --- programs -------------------------------------------------------------

// progALU exercises every ALU op plus signed division corner cases.
const progALU = `
        li   a0, 1000
        li   a1, 7
        add  a2, a0, a1
        sub  a3, a0, a1
        xor  a4, a0, a1
        or   a5, a0, a1
        and  a6, a0, a1
        sll  a7, a1, a1
        srl  s2, a0, a1
        sra  s3, a0, a1
        slt  s4, a1, a0
        sltu s5, a0, a1
        mul  s6, a0, a1
        div  s8, a0, a1
        rem  s9, a0, a1
        li   t0, -13
        div  s10, t0, a1
        rem  s11, t0, a1
        ebreak
`

// progMem exercises sub-word loads/stores through the bypass-locked
// data memory (staged-write forwarding in the RTL).
const progMem = `
        li   t0, 0x12345678
        sw   t0, 64(zero)
        lw   t1, 64(zero)
        lb   t2, 65(zero)
        lbu  t3, 67(zero)
        lh   t4, 66(zero)
        lhu  t5, 64(zero)
        sb   t0, 100(zero)
        sh   t0, 102(zero)
        lw   t6, 100(zero)
        ebreak
`

// progLoop runs a dependent-add loop: branches, forwarding, queue churn.
const progLoop = `
        li   t0, 0
        li   t1, 0
        li   t2, 50
loop:   add  t1, t1, t0
        addi t0, t0, 1
        bne  t0, t2, loop
        sw   t1, 0(zero)
        ebreak
`

// progFatal hits an illegal instruction; the fatal variants must commit
// everything older and nothing younger.
const progFatal = `
        li   t0, 7
        sw   t0, 0(zero)
        .word 0xFFFFFFFF
        li   t1, 9
        sw   t1, 4(zero)
        ebreak
`

// progIllegalTrap traps on an illegal instruction into a handler that
// reads mepc/mcause/mtval and resumes past the faulting word.
const progIllegalTrap = `
        li   t0, 40
        csrw mtvec, t0
        li   s0, 5
        .word 0xFFFFFFFF
        sw   s0, 8(zero)
        ebreak
        nop
        nop
        nop
        nop
        # handler (byte 40):
        csrr s1, mepc
        csrr s2, mcause
        csrr s3, mtval
        addi s1, s1, 4
        csrw mepc, s1
        mret
`

// progCSR hammers CSR reads/writes, which retire through the except
// chain (kind KCSR) on the CSR-capable variants.
const progCSR = `
        li   t0, 0
        li   t1, 0
loop:   csrw mscratch, t0
        csrr t2, mscratch
        add  t1, t1, t2
        addi t0, t0, 1
        li   t3, 8
        bne  t0, t3, loop
        sw   t1, 0(zero)
        ebreak
`

// progEcall takes a synchronous trap into a software handler and
// returns past it (fully featured variants).
const progEcall = `
        li   t0, 48            # handler address
        csrw mtvec, t0
        li   a0, 11
        li   a1, 22
        ecall
        add  a2, a0, a1
        sw   a2, 0(zero)
        ebreak
        nop
        nop
        nop
        nop
        # handler (byte 48):
        csrr t1, mepc
        addi t1, t1, 4
        csrw mepc, t1
        addi a0, a0, 100
        mret
`

// progInterrupt loops while an external interrupt fires mid-flight.
const progInterrupt = `
        li   t0, 64            # handler
        csrw mtvec, t0
        li   t1, 0x888         # MEIE|MTIE|MSIE
        csrw mie, t1
        csrrsi zero, mstatus, 8
        li   t2, 0
        li   t3, 200
loop:   addi t2, t2, 1
        bne  t2, t3, loop
        sw   t2, 0(zero)
        ebreak
        nop
        nop
        nop
        nop
        nop
        # handler (byte 64):
        csrr s2, mcause
        sw   s2, 4(zero)
        mret
`

// progTrapInterrupt is the no-csrw interrupt kernel for the Trap
// variant: firmware presets mtvec/mie/mstatus from outside.
const progTrapInterrupt = `
        li   t2, 0
        li   t3, 120
loop:   addi t2, t2, 1
        bne  t2, t3, loop
        sw   t2, 0(zero)
        ebreak
        nop
        nop
        # handler (byte 36): counts, no CSR instructions available
        lw   s2, 4(zero)
        addi s2, s2, 1
        sw   s2, 4(zero)
        mret
`

var trapFirmware = map[string]uint32{
	"mtvec":   36,
	"mie":     riscv.MIPMTIP | riscv.MIPMEIP,
	"mstatus": riscv.MStatusMIE,
}

// --- the matrix -----------------------------------------------------------

// TestLockstepAllVariants drives every variant over the plain kernels:
// zero divergence, zero cycle offset.
func TestLockstepAllVariants(t *testing.T) {
	progs := map[string]string{"alu": progALU, "mem": progMem, "loop": progLoop}
	for _, v := range designs.Variants() {
		for name, src := range progs {
			t.Run(v.String()+"/"+name, func(t *testing.T) {
				run(t, Options{Variant: v, Program: mustAsm(t, src)})
			})
		}
	}
}

// TestLockstepExceptions covers the exceptional paths: fatal halts and
// trap-and-resume flows.
func TestLockstepExceptions(t *testing.T) {
	t.Run("fatal/illegal", func(t *testing.T) {
		// The OIAT model has no fatal-halt mode, so the golden diff is
		// skipped; sim-vs-RTL lockstep still covers every cycle.
		run(t, Options{Variant: designs.Fatal, Program: mustAsm(t, progFatal), SkipGolden: true})
	})
	t.Run("all/illegal", func(t *testing.T) {
		run(t, Options{Variant: designs.All, Program: mustAsm(t, progIllegalTrap)})
	})
	for _, v := range []designs.Variant{designs.CSR, designs.All} {
		t.Run(v.String()+"/csr", func(t *testing.T) {
			run(t, Options{Variant: v, Program: mustAsm(t, progCSR)})
		})
	}
	t.Run("all/ecall", func(t *testing.T) {
		run(t, Options{Variant: designs.All, Program: mustAsm(t, progEcall)})
	})
}

// TestLockstepInterrupts delivers an asynchronous interrupt to both
// machines at the same device-visible cycle.
func TestLockstepInterrupts(t *testing.T) {
	// Interrupt claiming belongs to the trap feature group, so only the
	// trap-capable variants appear here.
	t.Run("all", func(t *testing.T) {
		run(t, Options{
			Variant: designs.All, Program: mustAsm(t, progInterrupt),
			InterruptAt: 60, InterruptBit: riscv.MIPMTIP,
		})
	})
	t.Run("trap/firmware", func(t *testing.T) {
		run(t, Options{
			Variant: designs.Trap, Program: mustAsm(t, progTrapInterrupt),
			Firmware:    trapFirmware,
			InterruptAt: 40, InterruptBit: riscv.MIPMTIP,
		})
	})
}

// TestLockstepInterp repeats a representative slice of the matrix with
// the simulator's AST-interpreter executor: the RTL must agree with
// both executors identically.
func TestLockstepInterp(t *testing.T) {
	for _, v := range designs.Variants() {
		t.Run(v.String()+"/loop", func(t *testing.T) {
			run(t, Options{Variant: v, Program: mustAsm(t, progLoop), Interp: true})
		})
	}
	t.Run("all/ecall", func(t *testing.T) {
		run(t, Options{Variant: designs.All, Program: mustAsm(t, progEcall), Interp: true})
	})
	t.Run("all/interrupt", func(t *testing.T) {
		run(t, Options{
			Variant: designs.All, Program: mustAsm(t, progInterrupt), Interp: true,
			InterruptAt: 60, InterruptBit: riscv.MIPMTIP,
		})
	})
}

// TestLockstepChaos perturbs the simulator's timing with the
// deterministic fault injector (stalls, extern jitter, entry
// backpressure) — the RTL replays the mangled schedule and must still
// match cycle-for-cycle. Interrupt-capable variants additionally take
// seed-driven interrupt storms.
func TestLockstepChaos(t *testing.T) {
	seeds := []uint64{0xC051, 0xC052, 0xC053, 0xC054}
	for _, v := range designs.Variants() {
		for _, seed := range seeds {
			t.Run(v.String(), func(t *testing.T) {
				run(t, Options{
					Variant: v, Program: mustAsm(t, progLoop),
					ChaosSeed: seed,
				})
			})
		}
	}
	// Masked storms: the kernel leaves MIE clear, so pulses accumulate
	// in mip without being claimed — exercising the device-port path at
	// the injector's full 10%/cycle rate.
	for _, seed := range seeds {
		t.Run("all/storm-masked", func(t *testing.T) {
			run(t, Options{
				Variant: designs.All, Program: mustAsm(t, progLoop),
				ChaosSeed: seed, Storm: true,
			})
		})
	}
	// Enabled storms: the handler claims pulses as they land; the rate
	// is lowered so forward progress outruns the interrupt stream.
	for _, seed := range seeds {
		t.Run("all/storm-enabled", func(t *testing.T) {
			run(t, Options{
				Variant: designs.All, Program: mustAsm(t, progInterrupt),
				ChaosSeed: seed, Storm: true, StormPct: 1,
			})
		})
	}
	t.Run("all/storm+interp", func(t *testing.T) {
		run(t, Options{
			Variant: designs.All, Program: mustAsm(t, progInterrupt),
			ChaosSeed: seeds[0], Storm: true, StormPct: 1, Interp: true,
		})
	})
}

// TestLockstepWorkloads runs real report kernels through cosimulation
// end to end: fib (short) on every variant, and the heavier aes and
// crc kernels on the extreme variants unless -short.
func TestLockstepWorkloads(t *testing.T) {
	cosimKernel := func(t *testing.T, name string, v designs.Variant, minRetired int) {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, Options{Variant: v, Program: prog, MaxCycles: 8 * w.MaxSteps})
		t.Logf("%s/%s: %d instructions in %d cycles", v, name, res.Retired, res.Cycles)
		if res.Retired < minRetired {
			t.Errorf("workload retired only %d instructions; not a real run", res.Retired)
		}
	}
	for _, v := range designs.Variants() {
		t.Run(v.String()+"/fib", func(t *testing.T) { cosimKernel(t, "fib", v, 200) })
	}
	if testing.Short() {
		t.Skip("heavy kernels skipped in -short")
	}
	for _, v := range []designs.Variant{designs.Base, designs.All} {
		t.Run(v.String()+"/aes", func(t *testing.T) { cosimKernel(t, "aes", v, 4000) })
	}
	t.Run("all/crc", func(t *testing.T) { cosimKernel(t, "crc", designs.All, 10000) })
}

// TestSeededEmitterBugCaught mutates the emitted Verilog the way a
// classic emitter bug would (dropping the global-exception-flag commit,
// i.e. one broken nonblocking assign) and requires the harness to
// report a divergence rather than pass silently. This is the
// harness-validates-itself check: cosim must have the power to fail.
func TestSeededEmitterBugCaught(t *testing.T) {
	p, err := designs.Build(designs.All)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := synth.VerilogPlans(p.Design.Info, p.Design.Translations)

	mutations := []struct {
		name, from, to string
	}{
		{"gef-commit-dropped", "gef_q <= gef_cur;", "gef_q <= 1'b0;"},
		{"mepc-commit-dropped", "mepc_q <= mepc_cur;", "mepc_q <= mepc_q;"},
	}
	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			if !strings.Contains(text, mut.from) {
				t.Fatalf("emitted verilog lost the %q assign; update the mutation", mut.from)
			}
			bad := strings.Replace(text, mut.from, mut.to, 1)
			_, err := Run(Options{
				Variant: designs.All, Program: mustAsm(t, progEcall),
				Verilog: bad,
			})
			var div *DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("seeded emitter bug not caught as divergence: %v", err)
			}
			t.Logf("caught: %v", div)
		})
	}
}

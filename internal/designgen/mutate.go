package designgen

import (
	"strings"

	"xpdl/internal/check"
	"xpdl/internal/diag"
	"xpdl/internal/pdl/parser"
)

// A Mutant is a deliberately rule-breaking transformation of a
// generated design's source, paired with the diagnostic code the
// checker must reject it with. Mutants operate by exact string surgery
// on the emitted text — legal because Source() is fully deterministic —
// and report inapplicability when the design lacks the construct.
//
// The mutants cover the checker's main rule families: lock discipline
// (reserve/acquire/release/double), volatile placement (reads after the
// barrier, writes only in final blocks), sync_read staging, and
// throw-vs-speculation ordering. CheckMutants proves each one is
// rejected with its code — the "checker rejects rule-breakers" half of
// the generator's claim, complementing "checker accepts the clean
// population".
type Mutant struct {
	Name string
	Code string // diagnostic code the checker must emit
	// Apply rewrites the source; ok=false when the design lacks the
	// construct this mutant breaks.
	Apply func(d *DesignSpec, src string) (out string, ok bool)
}

// replace1 rewrites the first occurrence, reporting whether it existed.
func replace1(src, old, new string) (string, bool) {
	if !strings.Contains(src, old) {
		return src, false
	}
	return strings.Replace(src, old, new, 1), true
}

// Mutants is the rule-breaking catalogue.
var Mutants = []Mutant{
	{
		Name: "read-unlocked",
		Code: "E-LOCK-NORESERVE",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Read rf before acquiring its read lock.
			return replace1(src,
				"acquire(rf[r1], R);\n    a = rf[r1];",
				"a = rf[r1];\n    acquire(rf[r1], R);")
		},
	},
	{
		Name: "write-unreserved",
		Code: "E-LOCK-UNOWNED",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Drop the write reservation; the staged write later blocks
			// and writes a lock it never owned.
			return replace1(src, "    if (wen) { reserve(rf[rd], W); }\n", "")
		},
	},
	{
		Name: "leak-read-lock",
		Code: "E-LOCK-UNRELEASED",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			return replace1(src, "    release(rf[r2]);\n", "")
		},
	},
	{
		Name: "leak-write-lock",
		Code: "E-LOCK-UNRELEASED",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			return replace1(src, "    if (wen) { release(rf[rd]); }\n", "")
		},
	},
	{
		Name: "double-acquire",
		Code: "E-LOCK-DOUBLE",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			return replace1(src,
				"acquire(rf[r1], R);",
				"acquire(rf[r1], R);\n    acquire(rf[r1], R);")
		},
	},
	{
		Name: "vol-read-speculative",
		Code: "E-VOL-READ",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Hoist a volatile read above the speculation barrier.
			if !d.Spec || !d.Vols {
				return src, false
			}
			return replace1(src,
				"spec_barrier();",
				"cv0 = ecause;\n    spec_barrier();")
		},
	},
	{
		Name: "vol-write-body",
		Code: "E-VOL-WRITE",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Volatile writes belong in final blocks only.
			if !d.Vols {
				return src, false
			}
			return replace1(src, "wb = res;", "wb = res;\n    ecause <- 32'd7;")
		},
	},
	{
		Name: "sync-read-comb",
		Code: "E-SYNC-READ",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Use a sync_read memory combinationally.
			return replace1(src, "insn <- imem[pc];", "insn = imem[pc];")
		},
	},
	{
		Name: "throw-before-barrier",
		Code: "E-SPEC",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// A throw in the fetch stage of a speculative design: the
			// barrier is always in a later stage, so a misspeculated
			// instruction could raise the exception (§3.5e).
			if !d.Spec || !d.HasExcept() {
				return src, false
			}
			return replace1(src,
				"insn <- imem[pc];",
				"insn <- imem[pc];\n    if (pc == 32'd4095) { throw(4'd2, pc); }")
		},
	},
	{
		Name: "call-in-commit",
		Code: "E-R4",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Rule 4: the commit block cannot spawn instructions.
			return replace1(src,
				"commit:\n",
				"commit:\n    call cpu(32'd0);\n")
		},
	},
	{
		Name: "call-early-except",
		Code: "E-R1C",
		Apply: func(d *DesignSpec, src string) (string, bool) {
			// Rule 1c: a recursive call in the except block must be in
			// its last stage; inject one into the first of two stages.
			if !d.Except2 {
				return src, false
			}
			return replace1(src,
				"except(cause: uint<4>, epc: uint<32>):\n",
				"except(cause: uint<4>, epc: uint<32>):\n    call cpu(epc);\n")
		},
	},
}

// CheckMutant applies one mutant and reports (applied, rejectedWithCode,
// otherDiags) — used by tests and the fuzz campaign's mutant pass.
func CheckMutant(d *DesignSpec, m Mutant) (applied bool, ok bool, got []string) {
	src, applied := m.Apply(d, d.Source())
	if !applied {
		return false, true, nil
	}
	codes := checkSource(src)
	for _, c := range codes {
		if c == m.Code {
			return true, true, codes
		}
	}
	return true, false, codes
}

// checkSource parses and checks a source, returning its error codes
// (E-PARSE for unparseable text).
func checkSource(src string) []string {
	p, err := parser.Parse(src)
	if err != nil {
		return []string{"E-PARSE"}
	}
	_, diags := check.Analyze(p, check.Options{})
	var codes []string
	for _, dg := range diags {
		if dg.Severity == diag.Error {
			codes = append(codes, dg.Code)
		}
	}
	return codes
}

// Package workloads provides the RV32IM benchmark kernels used by the
// evaluation — the stand-in for MachSuite (the paper compiles MachSuite
// to RV32IM with gcc; this repo has no compiler toolchain, so equivalent
// kernels are written directly in assembly). Each kernel runs a real
// algorithm over data-memory-resident state, stores a checksum to word 0
// of data memory, and halts with ebreak.
//
// The kernels exercise the microarchitectural behaviours that determine
// CPI: tight dependent ALU chains (fib), branchy control (sort, crc),
// byte memory traffic (aes), word streaming (memcpy), and multiply-heavy
// inner loops (gemm).
package workloads

import (
	"fmt"

	"xpdl/internal/asm"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name string
	// Source is the RV32IM assembly text.
	Source string
	// MaxSteps bounds golden-model steps (and derives a cycle budget).
	MaxSteps int
}

// All returns the kernels in report order.
func All() []Workload {
	return []Workload{
		{Name: "aes", Source: srcAES, MaxSteps: 60000},
		{Name: "gemm", Source: srcGEMM, MaxSteps: 60000},
		{Name: "sort", Source: srcSort, MaxSteps: 80000},
		{Name: "crc", Source: srcCRC, MaxSteps: 120000},
		{Name: "fib", Source: srcFib, MaxSteps: 20000},
		{Name: "memcpy", Source: srcMemcpy, MaxSteps: 40000},
		{Name: "spmv", Source: srcSPMV, MaxSteps: 40000},
		{Name: "stencil", Source: srcStencil, MaxSteps: 60000},
		{Name: "histogram", Source: srcHistogram, MaxSteps: 60000},
	}
}

// ByName looks a kernel up.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown kernel %q", name)
}

// Assemble builds the kernel's binary.
func (w Workload) Assemble() (*asm.Program, error) { return asm.Assemble(w.Source) }

// srcAES is an AES-flavoured byte-substitution/xor kernel: it builds a
// 256-entry S-box, then runs 10 rounds of sub+xor over a 16-byte state.
const srcAES = `
# aes-like kernel: sbox substitution + key xor rounds over a 16-byte state
        li   s0, 256         # sbox base (bytes 256..511)
        li   s1, 512         # state base (bytes 512..527)

# build sbox[i] = (i*167 + 13) & 0xFF  (a byte permutation: gcd(167,256)=1)
        li   t0, 0
        li   t1, 256
sbox_loop:
        li   t2, 167
        mul  t3, t0, t2
        addi t3, t3, 13
        andi t3, t3, 0xFF
        add  t4, s0, t0
        sb   t3, 0(t4)
        addi t0, t0, 1
        bne  t0, t1, sbox_loop

# init state[i] = i*31+7
        li   t0, 0
        li   t1, 16
st_loop:
        li   t2, 31
        mul  t3, t0, t2
        addi t3, t3, 7
        add  t4, s1, t0
        sb   t3, 0(t4)
        addi t0, t0, 1
        bne  t0, t1, st_loop

# 10 rounds: state[i] = sbox[state[i]] ^ (key=i*3+round)
        li   s2, 0           # round
        li   s3, 10
round_loop:
        li   t0, 0
        li   t1, 16
byte_loop:
        add  t4, s1, t0
        lbu  t5, 0(t4)
        add  t6, s0, t5
        lbu  t5, 0(t6)       # sbox lookup
        li   t2, 3
        mul  t3, t0, t2
        add  t3, t3, s2
        andi t3, t3, 0xFF
        xor  t5, t5, t3
        sb   t5, 0(t4)
        addi t0, t0, 1
        bne  t0, t1, byte_loop
        addi s2, s2, 1
        bne  s2, s3, round_loop

# checksum: sum of state bytes, xored with rotations
        li   t0, 0
        li   t1, 16
        li   a0, 0
ck_loop:
        add  t4, s1, t0
        lbu  t5, 0(t4)
        slli t6, t5, 3
        add  a0, a0, t6
        xor  a0, a0, t5
        addi t0, t0, 1
        bne  t0, t1, ck_loop
        sw   a0, 0(zero)
        ebreak
`

// srcGEMM multiplies two 6x6 integer matrices generated in place.
const srcGEMM = `
# gemm kernel: C = A * B over 6x6 matrices
        li   s0, 256         # A base
        li   s1, 512         # B base
        li   s2, 768         # C base
        li   s3, 6           # N

# A[i][j] = i + 2*j + 1 ; B[i][j] = i*j + 3
        li   t0, 0           # i
initi:  li   t1, 0           # j
initj:  mul  t2, t0, s3
        add  t2, t2, t1
        slli t2, t2, 2       # offset = (i*N+j)*4
        slli t3, t1, 1
        add  t3, t3, t0
        addi t3, t3, 1
        add  t4, s0, t2
        sw   t3, 0(t4)
        mul  t3, t0, t1
        addi t3, t3, 3
        add  t4, s1, t2
        sw   t3, 0(t4)
        addi t1, t1, 1
        bne  t1, s3, initj
        addi t0, t0, 1
        bne  t0, s3, initi

# triple loop
        li   t0, 0           # i
mi:     li   t1, 0           # j
mj:     li   a1, 0           # acc
        li   t2, 0           # k
mk:     mul  t3, t0, s3
        add  t3, t3, t2
        slli t3, t3, 2
        add  t3, t3, s0
        lw   t4, 0(t3)       # A[i][k]
        mul  t3, t2, s3
        add  t3, t3, t1
        slli t3, t3, 2
        add  t3, t3, s1
        lw   t5, 0(t3)       # B[k][j]
        mul  t6, t4, t5
        add  a1, a1, t6
        addi t2, t2, 1
        bne  t2, s3, mk
        mul  t3, t0, s3
        add  t3, t3, t1
        slli t3, t3, 2
        add  t3, t3, s2
        sw   a1, 0(t3)
        addi t1, t1, 1
        bne  t1, s3, mj
        addi t0, t0, 1
        bne  t0, s3, mi

# checksum: xor of all C entries rotated by index
        li   t0, 0
        li   t1, 36
        li   a0, 0
gck:    slli t2, t0, 2
        add  t2, t2, s2
        lw   t3, 0(t2)
        andi t4, t0, 31
        sll  t3, t3, t4
        xor  a0, a0, t3
        addi t0, t0, 1
        bne  t0, t1, gck
        sw   a0, 0(zero)
        ebreak
`

// srcSort insertion-sorts 32 pseudorandom words.
const srcSort = `
# sort kernel: insertion sort of 32 LCG-generated words
        li   s0, 256         # array base
        li   s1, 32          # N

# fill with LCG: x = x*1103515245 + 12345
        li   t0, 0
        li   t1, 42
fill:   li   t2, 0x41C64E6D
        mul  t1, t1, t2
        li   t2, 12345
        add  t1, t1, t2
        srli t3, t1, 8
        slli t4, t0, 2
        add  t4, t4, s0
        sw   t3, 0(t4)
        addi t0, t0, 1
        bne  t0, s1, fill

# insertion sort
        li   t0, 1           # i
outer:  slli t2, t0, 2
        add  t2, t2, s0
        lw   a1, 0(t2)       # key
        addi t3, t0, -1      # j
inner:  blt  t3, zero, place
        slli t4, t3, 2
        add  t4, t4, s0
        lw   t5, 0(t4)
        bgeu a1, t5, place
        sw   t5, 4(t4)
        addi t3, t3, -1
        j    inner
place:  addi t3, t3, 1
        slli t4, t3, 2
        add  t4, t4, s0
        sw   a1, 0(t4)
        addi t0, t0, 1
        bne  t0, s1, outer

# checksum: sum(i * a[i]) — order sensitive
        li   t0, 0
        li   a0, 0
sck:    slli t2, t0, 2
        add  t2, t2, s0
        lw   t3, 0(t2)
        addi t4, t0, 1
        mul  t3, t3, t4
        add  a0, a0, t3
        addi t0, t0, 1
        bne  t0, s1, sck
        sw   a0, 0(zero)
        ebreak
`

// srcCRC runs a bitwise CRC-32 over 48 generated words.
const srcCRC = `
# crc kernel: bitwise CRC-32 (poly 0xEDB88320) over 48 words
        li   s0, 0xFFFFFFFF  # crc
        li   s1, 0xEDB88320  # polynomial
        li   s2, 48          # words
        li   t0, 0           # word index
        li   t1, 777         # LCG state
word:   li   t2, 0x19660D
        mul  t1, t1, t2
        li   t2, 0x3C6EF35F
        add  t1, t1, t2
        xor  s0, s0, t1
        li   t3, 0           # bit
bit:    andi t4, s0, 1
        srli s0, s0, 1
        beqz t4, nob
        xor  s0, s0, s1
nob:    addi t3, t3, 1
        li   t5, 32
        bne  t3, t5, bit
        addi t0, t0, 1
        bne  t0, s2, word
        sw   s0, 0(zero)
        ebreak
`

// srcFib computes fib(40) iteratively (a dependent ALU chain).
const srcFib = `
# fib kernel: iterative fibonacci, tight RAW dependences
        li   t0, 0           # a
        li   t1, 1           # b
        li   t2, 0           # i
        li   t3, 40
floop:  add  t4, t0, t1
        mv   t0, t1
        mv   t1, t4
        addi t2, t2, 1
        bne  t2, t3, floop
        sw   t1, 0(zero)
        ebreak
`

// srcMemcpy copies 160 words plus a byte tail and checksums the copy.
const srcMemcpy = `
# memcpy kernel: word copy with byte tail
        li   s0, 256         # src
        li   s1, 1024        # dst
        li   s2, 160         # words

# fill source
        li   t0, 0
mf:     slli t1, t0, 2
        add  t1, t1, s0
        li   t2, 0x9E3779B9
        mul  t3, t0, t2
        addi t3, t3, 101
        sw   t3, 0(t1)
        addi t0, t0, 1
        bne  t0, s2, mf

# word copy
        li   t0, 0
mc:     slli t1, t0, 2
        add  t2, t1, s0
        lw   t3, 0(t2)
        add  t2, t1, s1
        sw   t3, 0(t2)
        addi t0, t0, 1
        bne  t0, s2, mc

# byte tail: copy 5 bytes from the end, byte-wise
        slli t1, s2, 2
        add  t2, t1, s0
        add  t4, t1, s1
        li   t0, 0
bt:     add  t5, t2, t0
        lbu  t6, -5(t5)
        add  t5, t4, t0
        sb   t6, -5(t5)
        addi t0, t0, 1
        li   t5, 5
        bne  t0, t5, bt

# checksum over the destination
        li   t0, 0
        li   a0, 0
cck:    slli t1, t0, 2
        add  t1, t1, s1
        lw   t2, 0(t1)
        add  a0, a0, t2
        xor  a0, a0, t0
        addi t0, t0, 1
        bne  t0, s2, cck
        sw   a0, 0(zero)
        ebreak
`

// srcSPMV multiplies a sparse matrix (CSR format, built at runtime) by a
// dense vector — MachSuite's spmv analogue.
const srcSPMV = `
# spmv kernel: y = A*x, A sparse in CSR form (8 rows, 3 nonzeros each)
        li   s0, 256         # values base
        li   s1, 512         # column-index base
        li   s2, 640         # row-pointer base
        li   s3, 768         # x base
        li   s4, 896         # y base
        li   s5, 8           # rows

# build: row i has nonzeros at columns (i, (i+3)%8, (i+5)%8), value i*2+c+1
        li   t0, 0           # row
        li   t1, 0           # nz index
bld:    slli t2, t0, 2
        add  t2, t2, s2
        sw   t1, 0(t2)       # rowptr[i] = nz
        li   t3, 0           # c = 0..2
bldc:   slli t4, t3, 1
        addi t4, t4, 3
        mul  t4, t4, t3      # spread
        add  t4, t4, t0
        andi t4, t4, 7       # column
        slli t5, t1, 2
        add  t6, t5, s1
        sw   t4, 0(t6)       # colidx[nz]
        slli t6, t0, 1
        add  t6, t6, t3
        addi t6, t6, 1
        add  t4, t5, s0
        sw   t6, 0(t4)       # val[nz]
        addi t1, t1, 1
        addi t3, t3, 1
        li   t4, 3
        bne  t3, t4, bldc
        addi t0, t0, 1
        bne  t0, s5, bld
        slli t2, t0, 2
        add  t2, t2, s2
        sw   t1, 0(t2)       # rowptr[rows] = total nz

# x[j] = j*j + 1
        li   t0, 0
bx:     mul  t2, t0, t0
        addi t2, t2, 1
        slli t3, t0, 2
        add  t3, t3, s3
        sw   t2, 0(t3)
        addi t0, t0, 1
        bne  t0, s5, bx

# y[i] = sum val[k]*x[colidx[k]] for k in rowptr[i]..rowptr[i+1]
        li   t0, 0           # row
rows:   slli t2, t0, 2
        add  t2, t2, s2
        lw   t3, 0(t2)       # k = rowptr[i]
        lw   t4, 4(t2)       # end = rowptr[i+1]
        li   a1, 0
inner:  bge  t3, t4, rdone
        slli t5, t3, 2
        add  t6, t5, s0
        lw   t6, 0(t6)       # val[k]
        add  t5, t5, s1
        lw   t5, 0(t5)       # col
        slli t5, t5, 2
        add  t5, t5, s3
        lw   t5, 0(t5)       # x[col]
        mul  t5, t5, t6
        add  a1, a1, t5
        addi t3, t3, 1
        j    inner
rdone:  slli t2, t0, 2
        add  t2, t2, s4
        sw   a1, 0(t2)
        addi t0, t0, 1
        bne  t0, s5, rows

# checksum
        li   t0, 0
        li   a0, 0
yck:    slli t2, t0, 2
        add  t2, t2, s4
        lw   t3, 0(t2)
        add  a0, a0, t3
        slli t3, t3, 1
        xor  a0, a0, t3
        addi t0, t0, 1
        bne  t0, s5, yck
        sw   a0, 0(zero)
        ebreak
`

// srcStencil runs a 1-D 3-point stencil over 64 elements for 8 sweeps —
// MachSuite's stencil analogue.
const srcStencil = `
# stencil kernel: b[i] = (a[i-1] + 2*a[i] + a[i+1]) / 4, ping-pong buffers
        li   s0, 256         # buffer A
        li   s1, 1024        # buffer B
        li   s2, 64          # N
        li   s3, 0           # sweep
        li   s4, 8           # sweeps

# init a[i] = i*13 & 0xFF
        li   t0, 0
ini:    li   t2, 13
        mul  t2, t2, t0
        andi t2, t2, 0xFF
        slli t3, t0, 2
        add  t3, t3, s0
        sw   t2, 0(t3)
        addi t0, t0, 1
        bne  t0, s2, ini

sweep:  li   t0, 1
        addi t6, s2, -1
body:   slli t2, t0, 2
        add  t3, t2, s0
        lw   t4, -4(t3)
        lw   t5, 0(t3)
        slli t5, t5, 1
        add  t4, t4, t5
        lw   t5, 4(t3)
        add  t4, t4, t5
        srli t4, t4, 2
        add  t3, t2, s1
        sw   t4, 0(t3)
        addi t0, t0, 1
        bne  t0, t6, body
        # copy edges
        lw   t2, 0(s0)
        sw   t2, 0(s1)
        slli t2, t6, 2
        add  t3, t2, s0
        lw   t4, 0(t3)
        add  t3, t2, s1
        sw   t4, 0(t3)
        # swap buffers
        mv   t2, s0
        mv   s0, s1
        mv   s1, t2
        addi s3, s3, 1
        bne  s3, s4, sweep

# checksum over the final buffer (s0 after even swaps)
        li   t0, 0
        li   a0, 0
sck2:   slli t2, t0, 2
        add  t2, t2, s0
        lw   t3, 0(t2)
        add  a0, a0, t3
        xor  a0, a0, t0
        addi t0, t0, 1
        bne  t0, s2, sck2
        sw   a0, 0(zero)
        ebreak
`

// srcHistogram bins 256 byte samples into 16 buckets (data-dependent
// addressing, read-modify-write traffic).
const srcHistogram = `
# histogram kernel: 16 buckets over 256 LCG bytes
        li   s0, 256         # samples base (bytes)
        li   s1, 640         # buckets base (words)
        li   s2, 256         # samples

# generate samples
        li   t0, 0
        li   t1, 99
gen:    li   t2, 0x19660D
        mul  t1, t1, t2
        li   t2, 0x3C6EF35F
        add  t1, t1, t2
        srli t3, t1, 16
        andi t3, t3, 0xFF
        add  t4, s0, t0
        sb   t3, 0(t4)
        addi t0, t0, 1
        bne  t0, s2, gen

# zero buckets
        li   t0, 0
        li   t5, 16
zb:     slli t2, t0, 2
        add  t2, t2, s1
        sw   zero, 0(t2)
        addi t0, t0, 1
        bne  t0, t5, zb

# bin
        li   t0, 0
bin:    add  t2, s0, t0
        lbu  t3, 0(t2)
        srli t3, t3, 4       # bucket = sample >> 4
        slli t3, t3, 2
        add  t3, t3, s1
        lw   t4, 0(t3)
        addi t4, t4, 1
        sw   t4, 0(t3)
        addi t0, t0, 1
        bne  t0, s2, bin

# checksum: sum buckets[i] * (i+1), plus total check
        li   t0, 0
        li   a0, 0
        li   a1, 0
hck:    slli t2, t0, 2
        add  t2, t2, s1
        lw   t3, 0(t2)
        add  a1, a1, t3
        addi t4, t0, 1
        mul  t3, t3, t4
        add  a0, a0, t3
        addi t0, t0, 1
        li   t5, 16
        bne  t0, t5, hck
        sub  a1, a1, s2      # must be zero: all samples binned
        beqz a1, okh
        li   a0, 0xDEAD
okh:    sw   a0, 0(zero)
        ebreak
`

package designgen

import (
	"testing"

	"xpdl/internal/check"
	"xpdl/internal/diag"
	"xpdl/internal/pdl/parser"
)

// TestGeneratedSpecsCheckClean renders a wide sample of the design space
// and asserts every claimed-legal design parses and checks with zero
// errors (warnings are allowed here; the vet satellite pins those).
func TestGeneratedSpecsCheckClean(t *testing.T) {
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 300; seed++ {
		d := Generate(seed)
		src := d.Source()
		distinct[d.Name()] = true
		if n := d.BodyStages(); n < 3 || n > 8 {
			t.Errorf("seed %d (%s): body stages %d out of band", seed, d.Name(), n)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d (%s): parse: %v\n%s", seed, d.Name(), err, src)
		}
		_, diags := check.Analyze(prog, check.Options{})
		for _, dg := range diags {
			if dg.Severity == diag.Error {
				t.Errorf("seed %d (%s): %s: %s", seed, d.Name(), dg.Code, dg.Message)
			}
		}
		if t.Failed() {
			t.Fatalf("design source:\n%s", src)
		}
	}
	if len(distinct) < 100 {
		t.Errorf("only %d distinct designs in 300 seeds", len(distinct))
	}
}

// TestSourceDeterministic: equal specs render byte-identically.
func TestSourceDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: non-deterministic Source", seed)
		}
	}
}

package asm

import (
	"testing"

	"xpdl/internal/riscv"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func disasm(p *Program) []string {
	out := make([]string, len(p.Text))
	for i, w := range p.Text {
		out[i] = riscv.Decode(w).String()
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
        addi a0, zero, 5
        add  a1, a0, a0
        sub  a2, a1, a0
        lw   t0, 8(sp)
        sw   t0, 12(sp)
        and  a3, a1, a2
    `)
	want := []string{
		"addi x10, x0, 5",
		"add x11, x10, x10",
		"sub x12, x11, x10",
		"lw x5, 8(x2)",
		"sw x5, 12(x2)",
		"and x13, x11, x12",
	}
	got := disasm(p)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("insn %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
        li   t0, 0
        li   t1, 10
loop:   addi t0, t0, 1
        bne  t0, t1, loop
        j    done
        nop
done:   nop
    `)
	// loop is at word 2 (byte 8); bne at word 3 (byte 12): offset -4.
	bne := riscv.Decode(p.Text[3])
	if bne.Op != riscv.BNE || bne.Imm != -4 {
		t.Errorf("bne = %v", bne)
	}
	j := riscv.Decode(p.Text[4])
	if j.Op != riscv.JAL || j.Imm != 8 {
		t.Errorf("j = %v (imm %d, want 8)", j, j.Imm)
	}
	if p.Labels["loop"] != 8 || p.Labels["done"] != 24 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestLiExpansion(t *testing.T) {
	p := assemble(t, `
        li a0, 100
        li a1, 0x12345
        li a2, -1
        li a3, 0x12800
    `)
	if len(p.Text) != 6 {
		t.Fatalf("expected 6 words (1+2+1+2), got %d", len(p.Text))
	}
	// Verify via the golden semantics: lui+addi must reconstruct.
	check := func(idx int, want uint32, twoWords bool) {
		var v uint32
		in := riscv.Decode(p.Text[idx])
		if twoWords {
			lui := in
			addi := riscv.Decode(p.Text[idx+1])
			if lui.Op != riscv.LUI || addi.Op != riscv.ADDI {
				t.Fatalf("li expansion at %d: %v %v", idx, lui, addi)
			}
			v = uint32(lui.Imm) + uint32(addi.Imm)
		} else {
			if in.Op != riscv.ADDI {
				t.Fatalf("short li at %d: %v", idx, in)
			}
			v = uint32(in.Imm)
		}
		if v != want {
			t.Errorf("li value at %d = %#x, want %#x", idx, v, want)
		}
	}
	check(0, 100, false)
	check(1, 0x12345, true)
	check(3, 0xFFFFFFFF, false)
	check(4, 0x12800, true)
}

func TestDataSection(t *testing.T) {
	p := assemble(t, `
        .data
vals:   .word 1, 2, 3
buf:    .space 4
        .text
        la a0, vals
        lw a1, 0(a0)
    `)
	if len(p.Data) != 7 {
		t.Fatalf("data words = %d, want 7", len(p.Data))
	}
	if p.Data[0] != 1 || p.Data[2] != 3 || p.Data[3] != 0 {
		t.Errorf("data = %v", p.Data)
	}
	if p.Labels["vals"] != 0 || p.Labels["buf"] != 12 {
		t.Errorf("data labels = %v", p.Labels)
	}
}

func TestCSRInstructions(t *testing.T) {
	p := assemble(t, `
        csrrw t0, mstatus, t1
        csrrs t2, mcause, zero
        csrrwi zero, mtvec, 4
        csrr  a0, mepc
        csrw  mscratch, a1
    `)
	ins := make([]riscv.Inst, len(p.Text))
	for i, w := range p.Text {
		ins[i] = riscv.Decode(w)
	}
	if ins[0].Op != riscv.CSRRW || ins[0].CSR != riscv.CSRMStatus {
		t.Errorf("csrrw = %v", ins[0])
	}
	if ins[2].Op != riscv.CSRRWI || ins[2].Rs1 != 4 {
		t.Errorf("csrrwi = %v", ins[2])
	}
	if ins[3].Op != riscv.CSRRS || ins[3].CSR != riscv.CSRMEPC || ins[3].Rs1 != 0 {
		t.Errorf("csrr = %v", ins[3])
	}
	if ins[4].Op != riscv.CSRRW || ins[4].Rd != 0 || ins[4].Rs1 != 11 {
		t.Errorf("csrw = %v", ins[4])
	}
}

func TestSystemInstructions(t *testing.T) {
	p := assemble(t, "ecall\nmret\nwfi\nebreak\n")
	want := []riscv.Op{riscv.ECALL, riscv.MRET, riscv.WFI, riscv.EBREAK}
	for i, w := range p.Text {
		if riscv.Decode(w).Op != want[i] {
			t.Errorf("insn %d = %v, want %v", i, riscv.Decode(w).Op, want[i])
		}
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := assemble(t, `
start:  mv a0, a1
        beqz a0, start
        bnez a0, start
        call start
        ret
        jr t0
    `)
	ins := disasm(p)
	want := []string{
		"addi x10, x11, 0",
		"beq x10, x0, -4",
		"bne x10, x0, -8",
		"jal x1, -12",
		"jalr x0, 0(x1)",
		"jalr x0, 0(x5)",
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("insn %d = %q, want %q", i, ins[i], want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"frobnicate a0, a1", "unknown mnemonic"},
		{"addi a0, a9000, 1", "unknown register"},
		{"addi a0, a1, 5000", "does not fit"},
		{"beq a0, a1, nowhere", "bad branch target"},
		{"x: nop\nx: nop", "duplicate label"},
		{".data\naddi a0, a0, 1", "in data section"},
		{"lw a0, a1", "expected offset(base)"},
		{"csrrw a0, madeup, a1", "unknown CSR"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) should fail", c.src)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestComments(t *testing.T) {
	p := assemble(t, `
        nop        # hash comment
        nop        // slash comment
    `)
	if len(p.Text) != 2 {
		t.Errorf("got %d words", len(p.Text))
	}
}

func TestLabelOnOwnLine(t *testing.T) {
	p := assemble(t, "top:\n  nop\n  j top\n")
	j := riscv.Decode(p.Text[1])
	if j.Imm != -4 {
		t.Errorf("j offset = %d, want -4", j.Imm)
	}
}

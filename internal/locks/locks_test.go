package locks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpdl/internal/val"
)

func v32(x uint64) val.Value { return val.New(x, 32) }

// --- Queue (basic) ----------------------------------------------------------

func TestBasicWriteVisibleOnlyAfterRelease(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Write(1, 3, v32(99))
	q.Commit()
	if got := q.Peek(3); got.Uint() != 0 {
		t.Fatalf("uncommitted write leaked: %v", got)
	}
	q.Begin()
	q.Release(1, 3)
	q.Commit()
	if got := q.Peek(3); got.Uint() != 99 {
		t.Fatalf("release did not commit: %v", got)
	}
}

func TestBasicOwnershipOrder(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Reserve(2, 3, true)
	q.Commit()
	if !q.Owns(1, 3, true) {
		t.Error("older reservation should own")
	}
	if q.Owns(2, 3, true) {
		t.Error("younger conflicting reservation must wait")
	}
	q.Begin()
	q.Release(1, 3)
	q.Commit()
	if !q.Owns(2, 3, true) {
		t.Error("after release the younger reservation owns")
	}
}

func TestReadersShareOwnership(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, false)
	q.Reserve(2, 3, false)
	q.Commit()
	if !q.Owns(1, 3, false) || !q.Owns(2, 3, false) {
		t.Error("two readers of the same address should both own")
	}
}

func TestDisjointAddressesDoNotConflict(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Reserve(2, 4, true)
	q.Commit()
	if !q.Owns(2, 4, true) {
		t.Error("disjoint addresses must not conflict")
	}
}

func TestWholeMemoryConflictsWithEverything(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, Whole, true)
	q.Reserve(2, 5, false)
	q.Commit()
	if q.Owns(2, 5, false) {
		t.Error("whole-memory write blocks all younger accesses")
	}
	if !q.ReadReady(1, 5) {
		t.Error("whole-memory owner should read any address")
	}
}

func TestBasicNoForwarding(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Write(1, 3, v32(7))
	q.Reserve(2, 3, false)
	q.Commit()
	if q.ReadReady(2, 3) {
		t.Error("basic lock must not forward pending writes")
	}
}

func TestBypassForwardsPendingWrite(t *testing.T) {
	q := NewBypass(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Write(1, 3, v32(7))
	q.Reserve(2, 3, false)
	q.Commit()
	if !q.ReadReady(2, 3) {
		t.Fatal("bypass read should be ready once the writer has written")
	}
	if got := q.Read(2, 3); got.Uint() != 7 {
		t.Errorf("forwarded %v, want 7", got)
	}
	// Architectural state still unchanged.
	if q.Peek(3).Uint() != 0 {
		t.Error("forwarding must not commit")
	}
}

func TestBypassWaitsForValue(t *testing.T) {
	q := NewBypass(8, 32)
	q.Begin()
	q.Reserve(1, 3, true) // writer reserved but has not written
	q.Reserve(2, 3, false)
	q.Commit()
	if q.ReadReady(2, 3) {
		t.Error("bypass read must wait until the writer produces the value")
	}
}

func TestBypassLatestWriteWins(t *testing.T) {
	q := NewBypass(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Write(1, 3, v32(7))
	q.Write(1, 3, v32(8))
	q.Reserve(2, 3, false)
	q.Commit()
	if got := q.Read(2, 3); got.Uint() != 8 {
		t.Errorf("got %v, want latest write 8", got)
	}
}

func TestOwnWriteVisibleToSelf(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Write(1, 3, v32(41))
	q.Commit()
	if got := q.Read(1, 3); got.Uint() != 41 {
		t.Errorf("own staged write invisible: %v", got)
	}
}

func TestAbortDiscardsPendingState(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 2, true)
	q.Write(1, 2, v32(5))
	q.Reserve(2, 3, false)
	q.Commit()

	q.Begin()
	q.Abort()
	q.Commit()
	if q.PendingCount() != 0 {
		t.Error("abort must revoke all reservations")
	}
	if q.Peek(2).Uint() != 0 {
		t.Error("abort must discard uncommitted writes")
	}
}

func TestSquashRemovesOneInstruction(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 2, true)
	q.Reserve(2, 2, true)
	q.Write(2, 2, v32(9))
	q.Commit()

	q.Begin()
	q.Squash(2)
	q.Commit()
	if q.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", q.PendingCount())
	}
	q.Begin()
	q.Write(1, 2, v32(4))
	q.Release(1, 2)
	q.Commit()
	if q.Peek(2).Uint() != 4 {
		t.Error("squashed instruction's write leaked")
	}
}

func TestRollbackRestoresQueue(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 2, true)
	q.Write(1, 2, v32(5))
	q.Commit()

	q.Begin()
	q.Write(1, 2, v32(6))
	q.Release(1, 2)
	q.Reserve(2, 4, false)
	q.Rollback()

	if q.Peek(2).Uint() != 0 {
		t.Error("rollback must undo the release's commit")
	}
	if q.PendingCount() != 1 {
		t.Errorf("pending = %d, want 1", q.PendingCount())
	}
	if got := q.Read(1, 2); got.Uint() != 5 {
		t.Errorf("staged write after rollback = %v, want 5", got)
	}
}

func TestOutOfOrderWriteReleasePanics(t *testing.T) {
	q := NewBasic(8, 32)
	q.Begin()
	q.Reserve(1, 3, true)
	q.Reserve(2, 3, true)
	q.Commit()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order release should panic")
		}
		q.Rollback()
	}()
	q.Begin()
	q.Release(2, 3)
}

// --- Renaming -----------------------------------------------------------------

func TestRenamingBasicFlow(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Begin()
	r.Reserve(1, 2, true)
	r.Commit()

	r.Begin()
	r.Reserve(2, 2, false) // younger reader sees the new mapping
	r.Commit()
	if r.ReadReady(2, 2) {
		t.Error("reader must wait for the producer")
	}

	r.Begin()
	r.Write(1, 2, v32(77))
	r.Commit()
	if !r.ReadReady(2, 2) {
		t.Fatal("value produced; reader should proceed before release")
	}
	if got := r.Read(2, 2); got.Uint() != 77 {
		t.Errorf("renamed read = %v, want 77", got)
	}
	if r.Peek(2).Uint() != 0 {
		t.Error("unreleased write must not be architectural")
	}

	r.Begin()
	r.Release(1, 2)
	r.Commit()
	if r.Peek(2).Uint() != 77 {
		t.Error("release must commit the mapping")
	}
}

func TestRenamingReaderBeforeWriterSeesOldValue(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Poke(2, v32(5))
	r.Begin()
	r.Reserve(1, 2, false) // reader first: captures old mapping
	r.Reserve(2, 2, true)  // writer allocates new phys
	r.Write(2, 2, v32(9))
	r.Commit()
	if got := r.Read(1, 2); got.Uint() != 5 {
		t.Errorf("WAR hazard: reader saw %v, want old value 5", got)
	}
}

func TestRenamingWAWBothProceed(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Begin()
	r.Reserve(1, 2, true)
	r.Reserve(2, 2, true)
	r.Write(1, 2, v32(1))
	r.Write(2, 2, v32(2))
	r.Release(1, 2)
	r.Release(2, 2)
	r.Commit()
	if r.Peek(2).Uint() != 2 {
		t.Errorf("final value %v, want the younger write 2", r.Peek(2))
	}
	if r.PendingCount() != 0 {
		t.Error("all reservations released")
	}
}

func TestRenamingSquashRestoresMapping(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Poke(2, v32(5))
	r.Begin()
	r.Reserve(1, 2, true)
	r.Write(1, 2, v32(9))
	r.Commit()

	r.Begin()
	r.Squash(1)
	r.Commit()

	r.Begin()
	r.Reserve(2, 2, false)
	r.Commit()
	if got := r.Read(2, 2); got.Uint() != 5 {
		t.Errorf("after squash, reader sees %v, want committed 5", got)
	}
}

func TestRenamingAbortRestoresCommittedMap(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Poke(1, v32(11))
	r.Begin()
	r.Reserve(1, 1, true)
	r.Write(1, 1, v32(99))
	r.Reserve(2, 1, true)
	r.Commit()

	r.Begin()
	r.Abort()
	r.Commit()
	if r.PendingCount() != 0 {
		t.Error("abort must drop reservations")
	}
	if r.Peek(1).Uint() != 11 {
		t.Errorf("abort changed architectural state: %v", r.Peek(1))
	}
	// The free list must be fully replenished: 4 spares again.
	r.Begin()
	for i := 0; i < 4; i++ {
		if !r.CanReserve(10+IID(i), 0, true) {
			t.Fatalf("free list not rebuilt after abort (allocation %d failed)", i)
		}
		r.Reserve(10+IID(i), 0, true)
	}
	r.Rollback()
}

func TestRenamingFreeListExhaustion(t *testing.T) {
	r := NewRenaming(2, 32, 2)
	r.Begin()
	r.Reserve(1, 0, true)
	r.Reserve(2, 1, true)
	r.Commit()
	if r.CanReserve(3, 0, true) {
		t.Error("free list should be exhausted")
	}
	r.Begin()
	r.Release(1, 0)
	r.Commit()
	if !r.CanReserve(3, 0, true) {
		t.Error("release must recycle a register")
	}
}

func TestRenamingRollback(t *testing.T) {
	r := NewRenaming(4, 32, 4)
	r.Poke(3, v32(8))
	r.Begin()
	r.Reserve(1, 3, true)
	r.Write(1, 3, v32(42))
	r.Release(1, 3)
	r.Rollback()
	if r.Peek(3).Uint() != 8 {
		t.Errorf("rollback failed: %v", r.Peek(3))
	}
	if r.PendingCount() != 0 {
		t.Error("rollback must remove the reservation")
	}
	if !r.CanReserve(2, 3, true) {
		t.Error("rollback must restore the free list")
	}
}

// --- Property tests ------------------------------------------------------------

// Property: on the basic queue, a random sequence of reserve/write/release
// by a single instruction is equivalent to direct array writes.
func TestQuickSingleInstructionEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		q := NewBasic(16, 32)
		ref := make([]uint64, 16)
		id := IID(1)
		held := map[uint64]bool{}
		for _, op := range ops {
			addr := uint64(op) % 16
			value := uint64(op >> 4)
			q.Begin()
			if !held[addr] {
				q.Reserve(id, addr, true)
				held[addr] = true
			}
			q.Write(id, addr, v32(value))
			q.Release(id, addr)
			held[addr] = false
			q.Commit()
			ref[addr] = value
		}
		for a := uint64(0); a < 16; a++ {
			if q.Peek(a).Uint() != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: abort never changes architectural state, for any interleaving
// of staged (unreleased) operations, on every lock kind.
func TestQuickAbortPreservesCommittedState(t *testing.T) {
	mk := []func() Lock{
		func() Lock { return NewBasic(8, 32) },
		func() Lock { return NewBypass(8, 32) },
		func() Lock { return NewRenaming(8, 32, 16) },
	}
	f := func(seedCommitted []uint16, staged []uint16, kind uint8) bool {
		l := mk[int(kind)%len(mk)]()
		// Commit a known architectural state.
		for i, x := range seedCommitted {
			l.Poke(uint64(i)%8, v32(uint64(x)))
		}
		var want [8]uint64
		for a := uint64(0); a < 8; a++ {
			want[a] = l.Peek(a).Uint()
		}
		// Stage arbitrary unreleased work by several instructions.
		l.Begin()
		for i, x := range staged {
			addr := uint64(x) % 8
			id := IID(i + 1)
			if !l.CanReserve(id, addr, true) {
				continue
			}
			l.Reserve(id, addr, true)
			l.Write(id, addr, v32(uint64(x)*3))
		}
		l.Commit()
		// Abort: architectural state must be untouched and no
		// reservations may survive.
		l.Begin()
		l.Abort()
		l.Commit()
		if l.PendingCount() != 0 {
			return false
		}
		for a := uint64(0); a < 8; a++ {
			if l.Peek(a).Uint() != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Begin+random mutations+Rollback is an exact no-op on every
// lock kind (state compared via Peek, PendingCount and a probe read).
func TestQuickRollbackIsNoOp(t *testing.T) {
	mk := []func() Lock{
		func() Lock { return NewBasic(8, 32) },
		func() Lock { return NewBypass(8, 32) },
		func() Lock { return NewRenaming(8, 32, 16) },
	}
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := mk[int(kind)%len(mk)]()
		// Build some committed + staged baseline state.
		l.Begin()
		for id := IID(1); id <= 3; id++ {
			addr := uint64(rng.Intn(8))
			if l.CanReserve(id, addr, true) {
				l.Reserve(id, addr, true)
				l.Write(id, addr, v32(uint64(rng.Intn(100))))
			}
		}
		l.Commit()
		before := snapshot(l)

		// Random mutation storm, then rollback.
		l.Begin()
		for i := 0; i < 20; i++ {
			id := IID(rng.Intn(5) + 10)
			addr := uint64(rng.Intn(8))
			switch rng.Intn(4) {
			case 0:
				if l.CanReserve(id, addr, rng.Intn(2) == 0) {
					l.Reserve(id, addr, true)
				}
			case 1:
				l.Squash(IID(rng.Intn(3) + 1))
			case 2:
				l.Abort()
			case 3:
				if l.CanReserve(id, addr, true) {
					l.Reserve(id, addr, true)
					l.Write(id, addr, v32(uint64(rng.Intn(100))))
				}
			}
		}
		l.Rollback()
		return snapshot(l) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// snapshot summarizes observable lock state.
func snapshot(l Lock) [9]uint64 {
	var s [9]uint64
	for a := uint64(0); a < 8; a++ {
		s[a] = l.Peek(a).Uint()
	}
	s[8] = uint64(l.PendingCount())
	return s
}

// Property: bypass forwarding returns exactly the latest older staged
// write, or the committed value when none exists.
func TestQuickBypassForwardingExactness(t *testing.T) {
	f := func(writes []uint16) bool {
		q := NewBypass(4, 32)
		q.Poke(1, v32(1000))
		q.Begin()
		var latest *uint64
		for i, w := range writes {
			id := IID(i + 1)
			q.Reserve(id, 1, true)
			if w%3 != 0 { // sometimes reserve without writing yet
				vv := uint64(w)
				q.Write(id, 1, v32(vv))
				latest = &vv
			}
		}
		reader := IID(len(writes) + 100)
		q.Reserve(reader, 1, false)
		q.Commit()

		anyPendingWriterWithoutValue := false
		for i, w := range writes {
			_ = i
			if w%3 == 0 {
				anyPendingWriterWithoutValue = true
			}
		}
		if anyPendingWriterWithoutValue {
			return !q.ReadReady(reader, 1)
		}
		if !q.ReadReady(reader, 1) {
			return false
		}
		got := q.Read(reader, 1).Uint()
		if latest == nil {
			return got == 1000
		}
		return got == *latest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlainMemory(t *testing.T) {
	p := NewPlain(4, 16)
	p.Poke(2, val.New(0x1FFFF, 32))
	if got := p.Peek(2); got.Uint() != 0xFFFF || got.Width() != 16 {
		t.Errorf("plain memory truncation: %v", got)
	}
	if p.Depth() != 4 {
		t.Error("depth")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	q := NewBasic(4, 32)
	expectPanic("write without reservation", func() { q.Write(1, 0, v32(1)) })
	expectPanic("release without reservation", func() { q.Release(1, 0) })
	expectPanic("out-of-range reserve", func() { q.Reserve(1, 99, true) })
	expectPanic("nested txn", func() { q.Begin(); q.Begin() })
	q.Rollback()

	r := NewRenaming(4, 32, 2)
	expectPanic("renaming whole-mem reserve", func() { r.Reserve(1, Whole, true) })
	expectPanic("renaming read without reservation", func() { r.Read(1, 0) })
	expectPanic("renaming write without reservation", func() { r.Write(1, 0, v32(1)) })
	if r.CanReserve(1, Whole, true) {
		t.Error("whole-memory reservations must be rejected by CanReserve")
	}
}

func TestBypassWholeMemOwnerReadsAndWrites(t *testing.T) {
	q := NewBypass(8, 32)
	q.Begin()
	q.Reserve(1, Whole, true)
	q.Write(1, 2, v32(5))
	q.Write(1, 3, v32(6))
	if !q.ReadReady(1, 2) {
		t.Fatal("whole-mem owner must read")
	}
	if q.Read(1, 2).Uint() != 5 {
		t.Error("own staged write under whole-mem reservation")
	}
	q.Release(1, Whole)
	q.Commit()
	if q.Peek(2).Uint() != 5 || q.Peek(3).Uint() != 6 {
		t.Error("whole-mem release must commit all writes")
	}
}

// Package core implements XPDL's pipeline-exception translation — the
// paper's central contribution (§3.3, Figure 4).
//
// A pipeline with final blocks is rewritten into extended base PDL:
//
//	S[[c_h --- c_t]]            = if gef skip else c_h --- S[[c_t]]
//	S[[commit: c_c]]            = c_c
//	S[[except(args): c_e]]      = gef <- true;
//	                              --- skip ... --- skip   (n padding stages)
//	                              --- pipeclear; specclear; abort(M_1..M_k)
//	                              --- c_e ; gef <- false
//	S[[c_b, commit, except]]    = S[[c_b]]; if lef S[[except]] else S[[commit]]
//	S[[throw(args)]]            = lef <- true; earg_i <- args_i
//
// The output uses compiler-internal AST constructs (GefGuard, LefBranch,
// PipeClear, SpecClear, Abort, SetLEF, SetGEF, SetEArg, EArgRef) that have
// no surface syntax: exposing them to programs would let designs corrupt
// pipeline state (§3.3).
package core

import (
	"sort"

	"xpdl/internal/check"
	"xpdl/internal/pdl/ast"
)

// Result is a translated pipeline plus the metadata later phases need.
type Result struct {
	// Pipe is the rewritten declaration: all logic lives in Body; Commit
	// and Except are nil. For pipelines without final blocks it is the
	// original declaration, untouched.
	Pipe *ast.PipeDecl
	// Translated reports whether the pipeline had final blocks.
	Translated bool
	// EArgs are the canonical except-argument slots (earg0..eargN-1).
	EArgs []ast.Param
	// PaddingStages is n in the rule above: the number of commit stages
	// beyond the one merged into the last body stage.
	PaddingStages int
	// AbortMems lists the memories aborted in the rollback stage, sorted.
	AbortMems []string
	// BodyStages is the body stage count of the original pipeline; the
	// translated fork lives in the last of them.
	BodyStages int
	// CommitStages and ExceptStages are the final-block stage counts of
	// the original pipeline.
	CommitStages, ExceptStages int
}

// Translate rewrites one checked pipeline. The program must have passed
// check.Check; pi is its analysis record.
func Translate(p *ast.PipeDecl, pi *check.PipeInfo) *Result {
	if !p.HasExcept() {
		return &Result{
			Pipe:       p,
			BodyStages: pi.BodyStages,
		}
	}

	res := &Result{
		Translated:   true,
		EArgs:        append([]ast.Param(nil), p.ExceptArgs...),
		BodyStages:   pi.BodyStages,
		CommitStages: pi.CommitStages,
		ExceptStages: pi.ExceptStages,
	}
	res.PaddingStages = pi.CommitStages - 1

	for m := range pi.LockedMems {
		res.AbortMems = append(res.AbortMems, m)
	}
	sort.Strings(res.AbortMems)

	bodyStages := ast.SplitStages(p.Body)
	translated := make([][]ast.Stmt, len(bodyStages))
	for i, st := range bodyStages {
		stmts := rewriteThrows(st, p.ExceptArgs)
		if i == len(bodyStages)-1 {
			// The final fork: commit on !lef, except chain on lef. The
			// first commit stage is merged here, so no new stage is
			// added for non-exceptional instructions (§3.2).
			fork := &ast.LefBranch{
				Commit: p.Commit,
				Except: res.buildExceptChain(p),
			}
			fork.SetPos(p.Pos)
			stmts = append(stmts, fork)
		}
		guard := &ast.GefGuard{Body: stmts}
		guard.SetPos(p.Pos)
		translated[i] = []ast.Stmt{guard}
	}

	res.Pipe = &ast.PipeDecl{
		Pos:        p.Pos,
		Name:       p.Name,
		Params:     p.Params,
		Mods:       p.Mods,
		Body:       ast.JoinStages(translated),
		Result:     p.Result,
		HasResult:  p.HasResult,
		ExceptArgs: p.ExceptArgs,
	}
	return res
}

// buildExceptChain assembles the lef-set arm: gef set, padding, rollback,
// then the except body with canonical arguments bound, and gef cleared at
// the end.
func (res *Result) buildExceptChain(p *ast.PipeDecl) []ast.Stmt {
	pos := p.Pos
	var chain []ast.Stmt

	// Stage F (shared with the fork): enter exception-handling mode.
	setGef := &ast.SetGEF{Value: true}
	setGef.SetPos(pos)
	chain = append(chain, setGef)

	// n padding stages so committing instructions ahead of the
	// exceptional one can drain (Fig. 6).
	for i := 0; i < res.PaddingStages; i++ {
		chain = append(chain, ast.NewStageSep(pos), ast.NewSkip(pos))
	}

	// Rollback stage: flush pipeline registers, reset speculation
	// records, abort every lock.
	chain = append(chain, ast.NewStageSep(pos))
	pc := &ast.PipeClear{}
	pc.SetPos(pos)
	sc := &ast.SpecClear{}
	sc.SetPos(pos)
	chain = append(chain, pc, sc)
	for _, m := range res.AbortMems {
		ab := &ast.Abort{Mem: m}
		ab.SetPos(pos)
		chain = append(chain, ab)
	}

	// Except body. Its first stage starts by binding the declared
	// argument names to the canonical eargs captured at the throw.
	chain = append(chain, ast.NewStageSep(pos))
	for i, a := range p.ExceptArgs {
		bind := &ast.Assign{Name: a.Name, RHS: ast.NewEArgRef(pos, i)}
		bind.SetPos(pos)
		chain = append(chain, bind)
	}
	chain = append(chain, p.Except...)

	// Leave exception-handling mode.
	clrGef := &ast.SetGEF{Value: false}
	clrGef.SetPos(pos)
	chain = append(chain, clrGef)
	return chain
}

// rewriteThrows replaces every throw (including inside conditional arms)
// with the lef/earg assignment sequence.
func rewriteThrows(stmts []ast.Stmt, eargs []ast.Param) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch n := s.(type) {
		case *ast.Throw:
			out = append(out, lowerThrow(n)...)
		case *ast.If:
			rewritten := &ast.If{
				Cond: n.Cond,
				Then: rewriteThrows(n.Then, eargs),
				Else: rewriteThrows(n.Else, eargs),
			}
			rewritten.SetPos(n.StmtPos())
			out = append(out, rewritten)
		default:
			out = append(out, s)
		}
	}
	return out
}

func lowerThrow(t *ast.Throw) []ast.Stmt {
	out := make([]ast.Stmt, 0, 1+len(t.Args))
	lef := &ast.SetLEF{}
	lef.SetPos(t.StmtPos())
	out = append(out, lef)
	for i, a := range t.Args {
		set := &ast.SetEArg{Index: i, Value: a}
		set.SetPos(t.StmtPos())
		out = append(out, set)
	}
	return out
}

// TranslateProgram translates every pipeline of a checked program and
// returns the results keyed by pipe name.
func TranslateProgram(info *check.Info) map[string]*Result {
	out := make(map[string]*Result, len(info.Prog.Pipes))
	for _, p := range info.Prog.Pipes {
		out[p.Name] = Translate(p, info.Pipes[p.Name])
	}
	return out
}

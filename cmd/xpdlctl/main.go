// Command xpdlctl is the CLI client for the xpdld simulation daemon.
//
// Usage:
//
//	xpdlctl [-addr URL] <command> [flags] [args]
//
// Commands:
//
//	submit   submit a job: -kind compile|simulate|chaos|cosim|bveq,
//	         -design, -workload or -asm file, -engine, -seed, -cycles,
//	         -checkpoint-every, -tenant, -bveq-len/-width/-window,
//	         -source file (compile only); -wait blocks and streams
//	         progress, -q prints only the job ID
//	status   print a job's status JSON
//	wait     block until a job is terminal, streaming progress
//	cancel   cancel a job (it checkpoints and stays resumable)
//	resume   re-enqueue a canceled job; -force also clears quarantine
//	report   print a done job's canonical report JSON
//	list     list jobs (optionally -tenant)
//	metrics  print the daemon's /metrics text
//
// The daemon address comes from -addr, else $XPDLD_ADDR, else
// http://127.0.0.1:7433. A bare host:port (as written by the daemon's
// addr file) is accepted.
//
// The global -retry flag (e.g. -retry 30s, default off) retries
// transient failures — connection refused while the daemon restarts,
// 429 tenant-quota rejections, 503 load shedding (honoring its
// Retry-After header), other 5xx — with jittered exponential backoff
// for up to that long before giving up.
//
// Exit codes: 0 success (job done, for waiting commands), 1 generic
// failure, 2 usage, 3 the awaited job failed, 4 the awaited job was
// canceled, 5 the awaited job was quarantined (crash-looping; see
// `resume -force`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"xpdl/internal/xpdld"
)

const (
	exitGeneric     = 1
	exitUsage       = 2
	exitFailed      = 3
	exitCanceled    = 4
	exitQuarantined = 5
)

func main() {
	addr := flag.String("addr", "", "daemon URL (default $XPDLD_ADDR or http://127.0.0.1:7433)")
	retry := flag.Duration("retry", 0, "retry transient failures (connect errors, 429, 503, 5xx) with backoff for this long (0 = fail fast)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := xpdld.NewClient(resolveAddr(*addr))
	c.RetryFor = *retry
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "submit":
		submit(c, args)
	case "status":
		st, err := c.Status(oneID(cmd, args))
		check(err)
		printJSON(st)
	case "wait":
		waitFor(c, oneID(cmd, args))
	case "cancel":
		st, err := c.Cancel(oneID(cmd, args))
		check(err)
		printJSON(st)
	case "resume":
		fs := flag.NewFlagSet("resume", flag.ExitOnError)
		force := fs.Bool("force", false, "also resume a quarantined job, resetting its attempt counter")
		_ = fs.Parse(args)
		id := oneID(cmd, fs.Args())
		var st xpdld.Status
		var err error
		if *force {
			st, err = c.ResumeForce(id)
		} else {
			st, err = c.Resume(id)
		}
		check(err)
		printJSON(st)
	case "report":
		b, err := c.Report(oneID(cmd, args))
		check(err)
		os.Stdout.Write(b)
	case "list":
		fs := flag.NewFlagSet("list", flag.ExitOnError)
		tenant := fs.String("tenant", "", "filter by tenant")
		_ = fs.Parse(args)
		sts, err := c.List(*tenant)
		check(err)
		for _, st := range sts {
			errKind := ""
			if st.Error != nil {
				errKind = " " + st.Error.Kind
			}
			fmt.Printf("%s  %-8s  %-8s  cycle=%d%s\n", st.ID, st.Spec.Kind, st.State, st.Progress.Cycle, errKind)
		}
	case "metrics":
		text, err := c.Metrics()
		check(err)
		fmt.Print(text)
	default:
		usage()
	}
}

func submit(c *xpdld.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	kind := fs.String("kind", "", "job kind: "+strings.Join(xpdld.Kinds(), "|"))
	design := fs.String("design", "", "processor variant (base|fatal|trap|csr|all)")
	source := fs.String("source", "", "XPDL source `file` (compile jobs)")
	workload := fs.String("workload", "", "built-in kernel name (fib, crc, ...)")
	asmFile := fs.String("asm", "", "RV32IM assembly `file`")
	engine := fs.String("engine", "", "executor: interp|closure|vm")
	seed := fs.Uint64("seed", 0, "fault-injection seed (chaos; optional for cosim)")
	cycles := fs.Int("cycles", 0, "cycle budget (0 = default, clamped to the tenant quota)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint interval in cycles (0 = server default, <0 disables)")
	tenant := fs.String("tenant", "", "tenant name for quota accounting")
	bveqLen := fs.Int("bveq-len", 0, "bveq: max program length")
	bveqWidth := fs.Int("bveq-width", 0, "bveq: immediate-domain width")
	bveqWindow := fs.Int("bveq-window", 0, "bveq: interrupt window in cycles")
	wait := fs.Bool("wait", false, "block until the job is terminal, streaming progress")
	quiet := fs.Bool("q", false, "print only the job ID")
	_ = fs.Parse(args)

	sp := xpdld.Spec{
		Kind: *kind, Tenant: *tenant, Design: *design,
		Workload: *workload, Engine: *engine, Seed: *seed,
		MaxCycles: *cycles, CheckpointEvery: *ckptEvery,
		BveqLen: *bveqLen, BveqWidth: *bveqWidth, BveqWindow: *bveqWindow,
	}
	if *source != "" {
		b, err := os.ReadFile(*source)
		check(err)
		sp.Source = string(b)
	}
	if *asmFile != "" {
		b, err := os.ReadFile(*asmFile)
		check(err)
		sp.Asm = string(b)
	}
	st, err := c.Submit(sp)
	check(err)
	if *quiet {
		fmt.Println(st.ID)
	} else {
		fmt.Fprintf(os.Stderr, "submitted %s (%s)\n", st.ID, st.Spec.Kind)
	}
	if *wait {
		waitFor(c, st.ID)
	}
}

// waitFor streams a job to its terminal state and exits with a code
// describing it.
func waitFor(c *xpdld.Client, id string) {
	last := ""
	st, err := c.Events(context.Background(), id, func(st xpdld.Status) bool {
		line := fmt.Sprintf("%s %s cycle=%d retired=%d checkpoint=%d",
			st.ID, st.State, st.Progress.Cycle, st.Progress.Retired, st.Progress.CheckpointCycle)
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
		return true
	})
	check(err)
	if !st.State.Terminal() {
		// Stream broke mid-job (e.g. daemon restart): fall back to Wait.
		st, err = c.Wait(context.Background(), id)
		check(err)
	}
	switch st.State {
	case xpdld.StateDone:
		b, err := c.Report(id)
		check(err)
		os.Stdout.Write(b)
	case xpdld.StateFailed:
		printJSON(st)
		os.Exit(exitFailed)
	case xpdld.StateCanceled:
		printJSON(st)
		os.Exit(exitCanceled)
	case xpdld.StateQuarantined:
		printJSON(st)
		os.Exit(exitQuarantined)
	}
}

func resolveAddr(flagAddr string) string {
	addr := flagAddr
	if addr == "" {
		addr = os.Getenv("XPDLD_ADDR")
	}
	if addr == "" {
		addr = "http://127.0.0.1:7433"
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

func oneID(cmd string, args []string) string {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "xpdlctl: %s takes exactly one job ID\n", cmd)
		os.Exit(exitUsage)
	}
	return args[0]
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpdlctl:", err)
		os.Exit(exitGeneric)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xpdlctl [-addr URL] <command> [flags]
commands: submit status wait cancel resume report list metrics`)
	os.Exit(exitUsage)
}

package parser

import (
	"strings"
	"testing"

	"xpdl/internal/pdl/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed:\n%v", err)
	}
	return prog
}

func parseErr(t *testing.T, src string) string {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatal("Parse unexpectedly succeeded")
	}
	return err.Error()
}

const figure1 = `
// Figure 1 of the paper: the 5-stage CPU in base PDL (abbreviated types).
extern func alu(op: uint<4>, a: uint<32>, b: uint<32>) -> uint<32>;
extern func calc_npc(pc: uint<32>, insn: uint<32>) -> uint<32>;
extern func isStore(insn: uint<32>) -> bool;
extern func isLoad(insn: uint<32>) -> bool;

memory rf: uint<32>[32] with renaming, comb_read;
memory imem: uint<32>[1024] with nolock, sync_read;
memory dmem: uint<32>[1024] with bypass, sync_read;

pipe cpu(pc: uint<32>)[rf, imem, dmem] {
    spec_check();
    insn <- imem[pc];
    ---
    spec_check();
    s <- spec_call cpu(pc + 1);
    rs1 = insn[19:15];
    rd = insn[11:7];
    acquire(rf[rs1], R);
    alu_arg1 = rf[rs1];
    release(rf[rs1]);
    reserve(rf[rd], W);
    ---
    spec_barrier();
    alu_out = alu(insn[3:0], alu_arg1, alu_arg1);
    npc = calc_npc(pc, insn);
    if (npc == pc + 1) { verify(s); }
    else { invalidate(s); call cpu(npc); }
    ---
    acquire(dmem[alu_out], W);
    if (isStore(insn)) { dmem[alu_out] <- alu_arg1; }
    if (isLoad(insn)) { dmem_out <- dmem[alu_out]; }
    else { dmem_out = alu_out; }
    release(dmem[alu_out]);
    ---
    block(rf[rd]);
    rf[rd] <- dmem_out;
    release(rf[rd]);
}
`

func TestParseFigure1(t *testing.T) {
	prog := mustParse(t, figure1)
	if len(prog.Externs) != 4 || len(prog.Mems) != 3 || len(prog.Pipes) != 1 {
		t.Fatalf("decl counts: externs=%d mems=%d pipes=%d",
			len(prog.Externs), len(prog.Mems), len(prog.Pipes))
	}
	cpu := prog.Pipe("cpu")
	if cpu == nil {
		t.Fatal("pipe cpu not found")
	}
	if got := ast.CountStages(cpu.Body); got != 5 {
		t.Errorf("cpu has %d stages, want 5", got)
	}
	if cpu.HasExcept() {
		t.Error("figure 1 has no except block")
	}
	if len(cpu.Mods) != 3 || cpu.Mods[0] != "rf" {
		t.Errorf("mods = %v", cpu.Mods)
	}
	rf := prog.Mem("rf")
	if rf.Lock != ast.LockRenaming || !rf.CombRead || rf.Depth != 32 {
		t.Errorf("rf decl = %+v", rf)
	}
	if prog.Mem("dmem").Lock != ast.LockBypass {
		t.Error("dmem should use the bypass lock")
	}
}

const figure2 = `
const ERR_INV = 5'd2;
extern func isInvalid(insn: uint<32>) -> bool;
memory rf: uint<32>[32] with renaming, comb_read;
memory imem: uint<32>[1024] with nolock, sync_read;
memory dmem: uint<32>[1024] with bypass, sync_read;
memory csr: uint<32>[32] with basic, comb_read;

pipe cpu(pc: uint<32>)[rf, imem, dmem, csr] {
    insn <- imem[pc];
    ---
    rd = insn[11:7];
    if (isInvalid(insn)) { throw(ERR_INV); }
    reserve(rf[rd], W);
    ---
    alu_out = insn;
    ---
    rd_data = alu_out;
    ---
    block(rf[rd]);
    rf[rd] <- rd_data;
commit:
    release(rf[rd]);
except(error_code: uint<5>):
    csr[2] <- error_code;
    acquire(csr[2], W);
    release(csr[2]);
    ---
    call cpu(64);
}
`

func TestParseFigure2FinalBlocks(t *testing.T) {
	prog := mustParse(t, figure2)
	cpu := prog.Pipe("cpu")
	if cpu == nil {
		t.Fatal("pipe cpu not found")
	}
	if !cpu.HasExcept() {
		t.Fatal("expected final blocks")
	}
	if got := ast.CountStages(cpu.Body); got != 5 {
		t.Errorf("body stages = %d, want 5", got)
	}
	if got := ast.CountStages(cpu.Commit); got != 1 {
		t.Errorf("commit stages = %d, want 1", got)
	}
	if got := ast.CountStages(cpu.Except); got != 2 {
		t.Errorf("except stages = %d, want 2", got)
	}
	if len(cpu.ExceptArgs) != 1 || cpu.ExceptArgs[0].Name != "error_code" {
		t.Errorf("except args = %v", cpu.ExceptArgs)
	}
	if cpu.ExceptArgs[0].Type.Width != 5 {
		t.Errorf("except arg width = %d, want 5", cpu.ExceptArgs[0].Type.Width)
	}
}

func TestParseThrowInsideIf(t *testing.T) {
	prog := mustParse(t, figure2)
	stages := ast.SplitStages(prog.Pipe("cpu").Body)
	var foundThrow bool
	for _, s := range stages[1] {
		if ifs, ok := s.(*ast.If); ok {
			for _, ts := range ifs.Then {
				if _, ok := ts.(*ast.Throw); ok {
					foundThrow = true
				}
			}
		}
	}
	if !foundThrow {
		t.Error("throw not parsed inside if arm")
	}
}

func TestCommitWithoutExceptRejected(t *testing.T) {
	src := `pipe p(x: uint<8>)[] { y = x; commit: skip; }`
	msg := parseErr(t, src)
	if !strings.Contains(msg, "except") {
		t.Errorf("error %q should mention except", msg)
	}
}

func TestExceptWithoutCommitRejected(t *testing.T) {
	src := `pipe p(x: uint<8>)[] { y = x; except(c: uint<4>): skip; }`
	msg := parseErr(t, src)
	if !strings.Contains(msg, "commit") {
		t.Errorf("error %q should mention commit", msg)
	}
}

func TestDuplicateExceptRejected(t *testing.T) {
	src := `pipe p(x: uint<8>)[] {
		y = x;
	commit:
		skip;
	except(c: uint<4>):
		skip;
	except(d: uint<4>):
		skip;
	}`
	msg := parseErr(t, src)
	if !strings.Contains(msg, "only one except") {
		t.Errorf("error %q should mention single except block", msg)
	}
}

func TestStageSepInsideIfRejected(t *testing.T) {
	src := `pipe p(x: uint<8>)[] { if (x == 0) { y = 1; --- z = 2; } }`
	msg := parseErr(t, src)
	if !strings.Contains(msg, "conditional") {
		t.Errorf("error %q should mention conditionals", msg)
	}
}

func TestExprPrecedence(t *testing.T) {
	prog := mustParse(t, `const C = 1 + 2 * 3 == 7 && 4 < 5;`)
	got := ast.ExprString(prog.Consts[0].Value)
	want := "(((1 + (2 * 3)) == 7) && (4 < 5))"
	if got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestTernaryAndSliceExprs(t *testing.T) {
	prog := mustParse(t, `const C = x == 0 ? y[7:0] : cat(a, b.f);`)
	got := ast.ExprString(prog.Consts[0].Value)
	want := "((x == 0) ? y[7:0] : cat(a, b.f))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestUnaryChain(t *testing.T) {
	prog := mustParse(t, `const C = !~-x;`)
	got := ast.ExprString(prog.Consts[0].Value)
	if got != "!~-x" {
		t.Errorf("got %s", got)
	}
}

func TestSubPipelineWithResult(t *testing.T) {
	src := `
pipe divide(n: uint<32>, d: uint<32>) -> uint<32> [] {
    q = n / d;
    ---
    return q;
}
pipe cpu(pc: uint<32>)[divide] {
    x <- call divide(pc, 2);
}
`
	prog := mustParse(t, src)
	div := prog.Pipe("divide")
	if div == nil || !div.HasResult || div.Result.Width != 32 {
		t.Fatalf("divide result not parsed: %+v", div)
	}
	cpu := prog.Pipe("cpu")
	call, ok := cpu.Body[0].(*ast.Call)
	if !ok || call.Result != "x" || call.Pipe != "divide" {
		t.Errorf("result-binding call parsed as %+v", cpu.Body[0])
	}
}

func TestVolatileDecl(t *testing.T) {
	prog := mustParse(t, `volatile pending: uint<32>;`)
	if len(prog.Vols) != 1 || prog.Vols[0].Name != "pending" || prog.Vols[0].Elem.Width != 32 {
		t.Errorf("volatile decl = %+v", prog.Vols)
	}
}

func TestFuncDecl(t *testing.T) {
	prog := mustParse(t, `
func isNop(op: uint<5>) -> bool {
    r = op == 0;
    return r;
}`)
	f := prog.Funcs[0]
	if f.Name != "isNop" || len(f.Params) != 1 || len(f.Body) != 2 {
		t.Errorf("func decl = %+v", f)
	}
}

func TestExternRecordResult(t *testing.T) {
	prog := mustParse(t, `extern func decode(insn: uint<32>) -> (op: uint<5>, rd: uint<5>);`)
	e := prog.Externs[0]
	if e.Result.Kind != ast.TRecord || len(e.Result.Fields) != 2 {
		t.Fatalf("extern result = %v", e.Result)
	}
	if e.Result.BitWidth() != 10 {
		t.Errorf("record width = %d, want 10", e.Result.BitWidth())
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	msg := parseErr(t, "pipe p(x: uint<8>)[] {\n  y = ;\n}")
	if !strings.Contains(msg, "2:") {
		t.Errorf("error %q should carry a line-2 position", msg)
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	msg := parseErr(t, "memory m uint<8>[4];\nmemory n: uint<8>[0];\n")
	if strings.Count(msg, "\n") < 1 {
		t.Errorf("want at least two diagnostics, got %q", msg)
	}
}

func TestPipeStringRoundTripShape(t *testing.T) {
	prog := mustParse(t, figure2)
	out := ast.PipeString(prog.Pipe("cpu"))
	for _, frag := range []string{"pipe cpu", "commit:", "except(error_code: uint<5>):", "throw(ERR_INV);", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed pipe missing %q:\n%s", frag, out)
		}
	}
}

func TestEmptyModList(t *testing.T) {
	prog := mustParse(t, `pipe p(x: uint<8>)[] { y = x; }`)
	if len(prog.Pipes[0].Mods) != 0 {
		t.Errorf("mods = %v, want empty", prog.Pipes[0].Mods)
	}
}

func TestSizedLiteralsInExprs(t *testing.T) {
	prog := mustParse(t, `const C = 32'hDEADBEEF;`)
	lit := prog.Consts[0].Value.(*ast.IntLit)
	if lit.Value != 0xDEADBEEF || lit.Width != 32 {
		t.Errorf("lit = %+v", lit)
	}
}

func TestDeclarationErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"memory m: uint<8>[4] with turbo;", "unknown memory option"},
		{"memory m: uint<8>[0];", "at least one word"},
		{"pipe p(x: uint<0>)[] { y = x; }", "width must be between"},
		{"pipe p(x: uint<65>)[] { y = x; }", "width must be between"},
		{"pipe p(x: string)[] { y = x; }", "expected type"},
		{"extern func f(a: uint<8>) uint<8>;", `expected "->"`},
		{"func f(a: uint<8>) -> uint<8> { --- return a; }", "combinational"},
		{"const C 5;", `expected "="`},
		{"banana;", "expected declaration"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestStatementErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"pipe p(x: uint<8>)[] { acquire(m[x], Q); }", "lock mode must be R or W"},
		{"pipe p(x: uint<8>)[] { x ?; }", "expected =, <-, or [index]"},
		{"pipe p(x: uint<8>)[] { y = (x[0])[1]; }", "only allowed on memories"},
		{"pipe p(x: uint<8>)[] { commit: skip; }", "no except block"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestElseIfChain(t *testing.T) {
	prog := mustParse(t, `
pipe p(x: uint<8>)[] {
    if (x == 0) { a = 1; }
    else if (x == 1) { a = 2; }
    else { a = 3; }
}`)
	ifs := prog.Pipe("p").Body[0].(*ast.If)
	if len(ifs.Else) != 1 {
		t.Fatalf("else arm = %d stmts", len(ifs.Else))
	}
	if _, ok := ifs.Else[0].(*ast.If); !ok {
		t.Error("else-if not chained")
	}
}

func TestWhitespaceAndCommentsEverywhere(t *testing.T) {
	mustParse(t, `
/* header */ memory m: uint<8>[4] /* opts */ with basic, comb_read;
pipe p(x: uint<8>)[m] { // trailing
    /* pre */ acquire(m[x[1:0]], W); // post
    m[x[1:0]] <- x; release(m[x[1:0]]);
}`)
}

// Crash containment: a panic escaping a stage execution — seeded here
// through a booby-trapped extern — must surface as a typed
// *InternalError carrying a repro snapshot, poison the machine, and
// never unwind out of Step. The repro snapshot must restore into a
// healthy machine that completes the workload.
package sim_test

import (
	"bytes"
	"errors"
	"testing"

	"xpdl/internal/designs"
	"xpdl/internal/sim"
	"xpdl/internal/val"
	"xpdl/internal/workloads"
)

func TestSeededPanicContained(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine, func(t *testing.T) {
			w, err := workloads.ByName("fib")
			if err != nil {
				t.Fatal(err)
			}
			prog, err := w.Assemble()
			if err != nil {
				t.Fatal(err)
			}

			// Booby-trap the ALU: panic on its 40th invocation, deep
			// enough that real state is in flight.
			ex := designs.Externs()
			orig := ex["alu"]
			calls := 0
			ex["alu"] = func(args []val.Value) sim.V {
				calls++
				if calls == 40 {
					panic("seeded extern fault")
				}
				return orig(args)
			}
			p, err := designs.BuildCfg(designs.All, sim.Config{Engine: engine, Externs: ex})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Load(prog); err != nil {
				t.Fatal(err)
			}
			if err := p.Boot(); err != nil {
				t.Fatal(err)
			}

			_, err = p.Run(w.MaxSteps * 32)
			var ie *sim.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("panicking extern: got %v, want *sim.InternalError", err)
			}
			if ie.Snapshot == nil {
				t.Fatal("InternalError carries no repro snapshot")
			}
			if len(ie.Stack) == 0 {
				t.Fatal("InternalError carries no stack")
			}

			// The machine is poisoned: every later Step returns the same
			// error instead of computing on corrupt state.
			if err := p.M.Step(); err != error(ie) {
				t.Fatalf("poisoned machine stepped: %v", err)
			}

			// The repro snapshot restores into a clean machine (sane
			// externs, same design) and completes the workload.
			res := resumeBuild(t, designs.All, w, 0, engine)
			if err := res.M.Restore(bytes.NewReader(ie.Snapshot)); err != nil {
				t.Fatalf("restore repro snapshot: %v", err)
			}
			if _, err := res.M.Run(w.MaxSteps * 32); err != nil {
				t.Fatalf("run restored repro snapshot: %v", err)
			}
		})
	}
}

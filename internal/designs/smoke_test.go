package designs

import "testing"

func TestSmokeCompileAll(t *testing.T) {
	for _, v := range Variants() {
		if _, err := Build(v); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
}

package synth_test

import (
	"strings"
	"testing"

	"xpdl/internal/designs"
	"xpdl/internal/pdl/ast"
	"xpdl/internal/rtl"
	"xpdl/internal/synth"
	"xpdl/internal/val"
)

// TestVerilogRoundTrip locks the emitter to the rtl executor: for every
// design variant, the emitted cpu module must parse, elaborate with the
// design's extern signatures, settle and clock without error. This is
// the floor the cosimulation harness builds on.
func TestVerilogRoundTrip(t *testing.T) {
	for _, v := range designs.Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			p, err := designs.Build(v)
			if err != nil {
				t.Fatal(err)
			}
			text, plans := synth.VerilogPlans(p.Design.Info, p.Design.Translations)
			plan, ok := plans["cpu"]
			if !ok {
				t.Fatalf("cpu pipe fell out of the synthesizable subset:\n%s", head(text, 30))
			}
			f, err := rtl.Parse(text)
			if err != nil {
				t.Fatalf("parse emitted verilog: %v", err)
			}
			mod := f.Module(plan.Module)
			if mod == nil {
				t.Fatalf("module %s not emitted", plan.Module)
			}
			m, err := rtl.Elaborate(mod, StubFuncs(p.Design.Info.Prog.Externs))
			if err != nil {
				t.Fatalf("elaborate: %v", err)
			}
			if err := m.Settle(); err != nil {
				t.Fatalf("settle: %v", err)
			}
			m.Poke("rst", val.New(1, 1))
			if err := m.Settle(); err != nil {
				t.Fatalf("settle under reset: %v", err)
			}
			if err := m.Clock(); err != nil {
				t.Fatalf("clock: %v", err)
			}
			m.Poke("rst", val.New(0, 1))
			for i := 0; i < 4; i++ {
				if err := m.Settle(); err != nil {
					t.Fatalf("settle cycle %d: %v", i, err)
				}
				if err := m.Clock(); err != nil {
					t.Fatalf("clock cycle %d: %v", i, err)
				}
			}
		})
	}
}

// StubFuncs builds do-nothing rtl extern bindings with the declared
// widths — enough to elaborate and tick an idle module.
func StubFuncs(externs []*ast.ExternDecl) map[string]*rtl.Func {
	funcs := make(map[string]*rtl.Func)
	for _, e := range externs {
		params := make([]int, len(e.Params))
		for i, prm := range e.Params {
			params[i] = prm.Type.BitWidth()
		}
		var results []int
		if e.Result.Kind == ast.TRecord {
			for _, f := range e.Result.Fields {
				results = append(results, f.Type.BitWidth())
			}
		} else if w := e.Result.BitWidth(); w > 0 {
			results = append(results, w)
		}
		rs := results
		funcs[e.Name] = &rtl.Func{
			Params:  params,
			Results: results,
			Fn: func(args []val.Value) []val.Value {
				out := make([]val.Value, len(rs))
				for i, w := range rs {
					out[i] = val.New(0, w)
				}
				return out
			},
		}
	}
	return funcs
}

func head(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

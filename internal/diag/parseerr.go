package diag

import (
	"strconv"
	"strings"

	"xpdl/internal/pdl/token"
)

// FromParseError converts a parser error — newline-separated lines of the
// form "line:col: message" — into E-PARSE diagnostics, so syntax errors
// flow through the same rendering and JSON paths as semantic ones. Lines
// that do not match the format become diagnostics at 1:1.
func FromParseError(err error) []Diagnostic {
	var out []Diagnostic
	for _, line := range strings.Split(err.Error(), "\n") {
		if line == "" {
			continue
		}
		d := Diagnostic{Pos: token.Pos{Line: 1, Col: 1}, Severity: Error, Code: "E-PARSE", Message: line}
		if i := strings.Index(line, ": "); i > 0 {
			if p, ok := parsePos(line[:i]); ok {
				d.Pos, d.Message = p, line[i+2:]
			}
		}
		out = append(out, d)
	}
	return out
}

func parsePos(s string) (token.Pos, bool) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return token.Pos{}, false
	}
	line, err1 := strconv.Atoi(s[:i])
	col, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || line < 1 || col < 1 {
		return token.Pos{}, false
	}
	return token.Pos{Line: line, Col: col}, true
}

package fault

import (
	"math"
	"testing"
)

// TestPulsesDeterministic: the schedule is a pure function of the seed,
// respects the budget, and keeps the spacing.
func TestPulsesDeterministic(t *testing.T) {
	a := New(Default(42)).Pulses(10_000, 6, 40)
	b := New(Default(42)).Pulses(10_000, 6, 40)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) > 6 {
		t.Fatalf("budget violated: %d pulses", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] < 40 {
			t.Fatalf("spacing violated: pulses at %d and %d", a[i-1], a[i])
		}
	}
}

// TestCursor: Fire consumes each scheduled cycle exactly once (skipped
// cycles are passed over), and Next predicts the earliest remaining
// pulse — the wake contract OnCycleWake relies on.
func TestCursor(t *testing.T) {
	s := Schedule{3, 10, 25}
	c := s.Cursor()
	if got := c.Next(0); got != 3 {
		t.Fatalf("Next(0) = %d, want 3", got)
	}
	if c.Fire(2) {
		t.Fatal("fired before the scheduled cycle")
	}
	if !c.Fire(3) {
		t.Fatal("did not fire at the scheduled cycle")
	}
	if c.Fire(3) {
		t.Fatal("fired twice for one scheduled cycle")
	}
	if got := c.Next(4); got != 10 {
		t.Fatalf("Next(4) = %d, want 10", got)
	}
	// A fast-forwarded machine may jump past a pulse; the cursor must
	// skip it rather than fire late.
	if c.Fire(12) {
		t.Fatal("fired late for a skipped pulse")
	}
	if got := c.Next(12); got != 25 {
		t.Fatalf("Next(12) = %d, want 25", got)
	}
	if !c.Fire(25) {
		t.Fatal("did not fire at the last scheduled cycle")
	}
	if got := c.Next(26); got != math.MaxInt {
		t.Fatalf("Next past the end = %d, want MaxInt", got)
	}
}

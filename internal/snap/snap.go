// Package snap is the byte-for-byte-deterministic binary container
// format behind simulator snapshots (see sim.Machine.Save/Restore and
// the cosim checkpoint). It provides a primitive-level Writer/Reader
// pair with three durability guarantees:
//
//   - Versioned: every stream opens with a fixed magic and a format
//     version; Open rejects a version mismatch with a *VersionError, so
//     a snapshot written by a different build of the format can never be
//     half-decoded into a plausible-but-wrong machine.
//   - Checksummed: a CRC-64 (ECMA) of the entire header+payload trails
//     the stream; Finish rejects any bit flip with a *CorruptError.
//   - Deterministic: the encoding has exactly one representation per
//     value sequence (unsigned LEB128 varints, length-prefixed byte
//     strings, no maps, no padding), so saving the same state twice
//     yields identical bytes — which the golden-snapshot tests pin.
//
// The container is schema-free: the caller (the machine codec) writes
// and reads primitives in a fixed order. Truncation therefore surfaces
// either as an unexpected-EOF *CorruptError at the primitive that ran
// dry or as a checksum mismatch at Finish.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"

	"xpdl/internal/val"
)

// Magic opens every snapshot stream.
const Magic = "XPDS"

// Version is the current snapshot format version. Bump it whenever the
// machine codec's field order or meaning changes; Open is strict.
const Version = 1

// maxBlob bounds length-prefixed byte strings, so a corrupted length
// cannot force a multi-gigabyte allocation before the checksum check.
const maxBlob = 1 << 26

var crcTable = crc64.MakeTable(crc64.ECMA)

// VersionError reports a snapshot written under a different format
// version than this build understands.
type VersionError struct {
	Got, Want uint64
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snap: snapshot format version %d, this build reads version %d", e.Got, e.Want)
}

// CorruptError reports a snapshot that failed structural validation:
// bad magic, a truncated stream, a checksum mismatch, or trailing
// garbage after the checksum.
type CorruptError struct {
	Offset int64 // stream offset at detection
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snap: corrupt snapshot at offset %d: %s", e.Offset, e.Reason)
}

// ---------------------------------------------------------------------------
// Writer

// Writer encodes a snapshot stream. Errors are sticky: the first write
// failure is remembered and returned by Close, so codec code can write
// unconditionally and check once.
type Writer struct {
	w   io.Writer
	crc uint64
	off int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter starts a snapshot stream on w, emitting the magic and
// format version.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	sw.write([]byte(Magic))
	sw.U64(Version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc64.Update(w.crc, crcTable, p)
	n, err := w.w.Write(p)
	w.off += int64(n)
	if err != nil {
		w.err = err
	}
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int writes a non-negative int. Negative values poison the stream —
// the machine codec has no negative quantities, so one indicates a bug.
func (w *Writer) Int(v int) {
	if v < 0 && w.err == nil {
		w.err = fmt.Errorf("snap: negative int %d", v)
		return
	}
	w.U64(uint64(v))
}

// Bool writes a single 0/1 byte.
func (w *Writer) Bool(b bool) {
	var v uint64
	if b {
		v = 1
	}
	w.U64(v)
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.Int(len(p))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Val writes a sized bit vector as (width, bits). The zero val.Value
// round-trips as width 0.
func (w *Writer) Val(v val.Value) {
	if v == (val.Value{}) {
		w.U64(0)
		return
	}
	w.Int(v.Width())
	w.U64(v.Uint())
}

// Close appends the checksum trailer and returns the first error
// encountered, if any. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], w.crc)
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = err
	}
	return w.err
}

// ---------------------------------------------------------------------------
// Reader

// Reader decodes a snapshot stream. Like Writer, errors are sticky;
// reads after a failure return zero values, and Finish reports the
// first error.
type Reader struct {
	r   io.Reader
	crc uint64
	off int64
	err error
}

// Open validates the magic and version of a snapshot stream and
// returns a reader positioned at the first payload primitive. A wrong
// magic yields a *CorruptError; a version mismatch a *VersionError.
func Open(r io.Reader) (*Reader, error) {
	sr := &Reader{r: r}
	var magic [4]byte
	sr.read(magic[:])
	if sr.err != nil {
		return nil, sr.corrupt("missing magic")
	}
	if string(magic[:]) != Magic {
		return nil, sr.corrupt(fmt.Sprintf("bad magic %q", magic[:]))
	}
	ver := sr.U64()
	if sr.err != nil {
		return nil, sr.corrupt("missing version")
	}
	if ver != Version {
		return nil, &VersionError{Got: ver, Want: Version}
	}
	return sr, nil
}

func (r *Reader) corrupt(reason string) error {
	ce := &CorruptError{Offset: r.off, Reason: reason}
	if r.err == nil || !isCorrupt(r.err) {
		r.err = ce
	}
	return r.err
}

func isCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	n, err := io.ReadFull(r.r, p)
	r.off += int64(n)
	if err != nil {
		r.err = &CorruptError{Offset: r.off, Reason: "truncated stream: " + err.Error()}
		return
	}
	r.crc = crc64.Update(r.crc, crcTable, p)
}

// ReadByte implements io.ByteReader for varint decoding.
func (r *Reader) ReadByte() (byte, error) {
	var b [1]byte
	r.read(b[:])
	if r.err != nil {
		return 0, r.err
	}
	return b[0], nil
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil && r.err == nil {
		r.err = &CorruptError{Offset: r.off, Reason: "bad varint: " + err.Error()}
	}
	return v
}

// Int reads a non-negative int.
func (r *Reader) Int() int {
	v := r.U64()
	if v > uint64(int(^uint(0)>>1)) {
		r.corrupt(fmt.Sprintf("int out of range: %d", v))
		return 0
	}
	return int(v)
}

// Bool reads a 0/1 byte; any other value is corruption.
func (r *Reader) Bool() bool {
	switch r.U64() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.corrupt("bool out of range")
		return false
	}
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n > maxBlob {
		r.corrupt(fmt.Sprintf("byte string of %d exceeds limit", n))
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	if r.err != nil {
		return nil
	}
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Val reads a sized bit vector written by Writer.Val.
func (r *Reader) Val() val.Value {
	w := r.Int()
	if w == 0 || r.err != nil {
		return val.Value{}
	}
	bits := r.U64()
	if r.err != nil {
		return val.Value{}
	}
	if w > val.MaxWidth {
		r.corrupt(fmt.Sprintf("value width %d out of range", w))
		return val.Value{}
	}
	if bits != val.New(bits, w).Uint() {
		r.corrupt(fmt.Sprintf("value %#x overflows width %d", bits, w))
		return val.Value{}
	}
	return val.New(bits, w)
}

// Err reports the first decoding error, if any, without consuming the
// trailer. Codec code can use it to bail out of loops early.
func (r *Reader) Err() error { return r.err }

// Finish validates the checksum trailer and requires the stream to end
// exactly there. It returns the first error seen on the stream.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc // read() below folds the trailer in; capture first
	var tail [8]byte
	if _, err := io.ReadFull(r.r, tail[:]); err != nil {
		r.off += 8
		return r.corrupt("truncated checksum trailer")
	}
	r.off += 8
	got := binary.LittleEndian.Uint64(tail[:])
	if got != want {
		return r.corrupt(fmt.Sprintf("checksum mismatch: stream %#x, computed %#x", got, want))
	}
	var one [1]byte
	if n, err := r.r.Read(one[:]); n != 0 || err == nil {
		return r.corrupt("trailing bytes after checksum")
	}
	return nil
}

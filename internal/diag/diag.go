// Package diag defines the structured diagnostics XPDL's static analyses
// emit: a Diagnostic carries a source span, a severity, a stable code
// (E-… for errors, W-… for warnings; see DIAGNOSTICS.md for the full
// table), a human message, optional free-form notes, and related
// positions (e.g. the acquisition sites witnessing a lock-order cycle).
//
// The package also provides caret-style source-excerpt rendering
// (render.go), machine-readable JSON output (json.go), and the
// `xpdlvet:` source-comment directives that mark expected diagnostics in
// test fixtures (directives.go).
package diag

import (
	"fmt"
	"sort"
	"strings"

	"xpdl/internal/pdl/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Note Severity = iota
	Warning
	Error
)

// String names the severity as rendered in output.
func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Related anchors an auxiliary position to a diagnostic: a witness step
// in a deadlock chain, the first of two conflicting declarations, etc.
type Related struct {
	Pos     token.Pos
	Message string
}

// Diagnostic is one finding of a static analysis.
type Diagnostic struct {
	// Pos is where the finding anchors; every diagnostic must carry a
	// real (non-zero) position. End, when set, extends the span on the
	// same line for multi-column carets; zero means "one column".
	Pos token.Pos
	End token.Pos

	Severity Severity
	// Code is the stable machine-readable identifier (e.g. "E-R3",
	// "W-LOCK-ORDER"). Codes never change meaning across releases.
	Code    string
	Message string

	// Notes are free-form follow-up lines (fix hints, model details).
	Notes []string
	// Related lists auxiliary source positions with their own captions.
	Related []Related
}

// String renders the one-line form: "line:col: severity[CODE]: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// List accumulates diagnostics with a cap on stored errors. Beyond Max
// errors further error diagnostics are counted but not stored; Flush
// materializes the count as a final E-LIMIT diagnostic so truncation is
// never silent. Warnings and notes are not capped.
type List struct {
	// Max bounds the number of stored error diagnostics; 0 means the
	// DefaultMaxErrors cap.
	Max     int
	Diags   []Diagnostic
	dropped int
	lastPos token.Pos
}

// DefaultMaxErrors is the error cap applied when List.Max is zero.
const DefaultMaxErrors = 50

func (l *List) max() int {
	if l.Max > 0 {
		return l.Max
	}
	return DefaultMaxErrors
}

// Add appends a diagnostic, enforcing the error cap.
func (l *List) Add(d Diagnostic) {
	if d.Severity == Error {
		if l.errorCount() >= l.max() {
			l.dropped++
			l.lastPos = d.Pos
			return
		}
	}
	l.Diags = append(l.Diags, d)
}

// Errorf adds an error diagnostic with a formatted message.
func (l *List) Errorf(pos token.Pos, code, format string, args ...interface{}) {
	l.Add(Diagnostic{Pos: pos, Severity: Error, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Warnf adds a warning diagnostic with a formatted message.
func (l *List) Warnf(pos token.Pos, code, format string, args ...interface{}) {
	l.Add(Diagnostic{Pos: pos, Severity: Warning, Code: code, Message: fmt.Sprintf(format, args...)})
}

func (l *List) errorCount() int {
	n := 0
	for _, d := range l.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error diagnostic was added (stored or
// dropped by the cap).
func (l *List) HasErrors() bool { return l.errorCount() > 0 || l.dropped > 0 }

// Flush finalizes the list: if the error cap dropped diagnostics, a
// closing E-LIMIT error records how many, anchored at the first dropped
// position. It returns the stored diagnostics.
func (l *List) Flush() []Diagnostic {
	if l.dropped > 0 {
		l.Diags = append(l.Diags, Diagnostic{
			Pos:      l.lastPos,
			Severity: Error,
			Code:     "E-LIMIT",
			Message:  fmt.Sprintf("too many errors: %d more diagnostic(s) suppressed", l.dropped),
			Notes:    []string{"fix the errors above and re-run to see the rest"},
		})
		l.dropped = 0
	}
	return l.Diags
}

// Sort orders diagnostics by source position (line, then column), with
// errors before warnings at the same position.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Severity > b.Severity
	})
}

// Errors filters the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Warnings filters the warning-severity diagnostics.
func Warnings(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// ToError converts the error diagnostics to a single Go error whose
// message is one "pos: severity[CODE]: message" line per error, or nil
// when there are none. It preserves the historical checker error shape.
func ToError(diags []Diagnostic) error {
	errs := Errors(diags)
	if len(errs) == 0 {
		return nil
	}
	lines := make([]string, len(errs))
	for i, d := range errs {
		lines[i] = d.String()
	}
	return fmt.Errorf("%s", strings.Join(lines, "\n"))
}

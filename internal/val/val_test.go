package val

import (
	"testing"
	"testing/quick"
)

func TestNewTruncates(t *testing.T) {
	v := New(0x1FF, 8)
	if v.Uint() != 0xFF {
		t.Errorf("New(0x1FF, 8).Uint() = %#x, want 0xFF", v.Uint())
	}
	if v.Width() != 8 {
		t.Errorf("Width() = %d, want 8", v.Width())
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(_, %d) did not panic", w)
				}
			}()
			New(0, w)
		}()
	}
}

func TestZeroValue(t *testing.T) {
	var v Value
	if v.Width() != 1 || v.Uint() != 0 || v.IsTrue() {
		t.Errorf("zero Value = %v, want 1'h0", v)
	}
}

func TestBool(t *testing.T) {
	if Bool(true).Uint() != 1 || Bool(false).Uint() != 0 {
		t.Error("Bool round-trip broken")
	}
	if Bool(true).Width() != 1 {
		t.Error("Bool width != 1")
	}
}

func TestIntSignInterpretation(t *testing.T) {
	cases := []struct {
		bits  uint64
		width int
		want  int64
	}{
		{0xFF, 8, -1},
		{0x7F, 8, 127},
		{0x80, 8, -128},
		{0xFFFFFFFF, 32, -1},
		{0x80000000, 32, -2147483648},
		{0, 32, 0},
		{^uint64(0), 64, -1},
	}
	for _, c := range cases {
		if got := New(c.bits, c.width).Int(); got != c.want {
			t.Errorf("New(%#x,%d).Int() = %d, want %d", c.bits, c.width, got, c.want)
		}
	}
}

func TestAddWraps(t *testing.T) {
	v := New(0xFF, 8).Add(New(1, 8))
	if v.Uint() != 0 {
		t.Errorf("0xFF+1 (8-bit) = %#x, want 0", v.Uint())
	}
}

func TestSubWraps(t *testing.T) {
	v := New(0, 8).Sub(New(1, 8))
	if v.Uint() != 0xFF {
		t.Errorf("0-1 (8-bit) = %#x, want 0xFF", v.Uint())
	}
}

func TestMulFull(t *testing.T) {
	v := New(0xFFFFFFFF, 32).MulFull(New(0xFFFFFFFF, 32))
	if v.Width() != 64 {
		t.Fatalf("MulFull width = %d, want 64", v.Width())
	}
	if v.Uint() != 0xFFFFFFFE00000001 {
		t.Errorf("MulFull = %#x", v.Uint())
	}
}

func TestDivRemRISCVEdgeCases(t *testing.T) {
	w := 32
	allOnes := New(0xFFFFFFFF, w)
	minI := New(0x80000000, w)
	negOne := New(0xFFFFFFFF, w)
	ten := New(10, w)

	if got := ten.DivU(New(0, w)); !got.Eq(allOnes) {
		t.Errorf("10 /u 0 = %v, want all ones", got)
	}
	if got := ten.RemU(New(0, w)); !got.Eq(ten) {
		t.Errorf("10 %%u 0 = %v, want 10", got)
	}
	if got := ten.DivS(New(0, w)); !got.Eq(allOnes) {
		t.Errorf("10 /s 0 = %v, want -1", got)
	}
	if got := ten.RemS(New(0, w)); !got.Eq(ten) {
		t.Errorf("10 %%s 0 = %v, want 10", got)
	}
	if got := minI.DivS(negOne); !got.Eq(minI) {
		t.Errorf("MinInt /s -1 = %v, want MinInt", got)
	}
	if got := minI.RemS(negOne); !got.IsZero() {
		t.Errorf("MinInt %%s -1 = %v, want 0", got)
	}
	if got := New(7, w).DivS(New(0xFFFFFFFE, w)); got.Int() != -3 {
		t.Errorf("7 /s -2 = %d, want -3", got.Int())
	}
}

func TestShifts(t *testing.T) {
	v := New(0x80000000, 32)
	if got := v.ShrS(New(4, 32)); got.Uint() != 0xF8000000 {
		t.Errorf("arith shift = %#x", got.Uint())
	}
	if got := v.ShrU(New(4, 32)); got.Uint() != 0x08000000 {
		t.Errorf("logical shift = %#x", got.Uint())
	}
	// Shift amounts are taken mod width.
	if got := New(1, 32).Shl(New(33, 32)); got.Uint() != 2 {
		t.Errorf("shl 33 mod 32 = %#x, want 2", got.Uint())
	}
}

func TestComparisons(t *testing.T) {
	a := New(0xFFFFFFFF, 32) // -1 signed, max unsigned
	b := New(1, 32)
	if !a.GtU(b).IsTrue() {
		t.Error("0xFFFFFFFF >u 1 should hold")
	}
	if !a.LtS(b).IsTrue() {
		t.Error("-1 <s 1 should hold")
	}
	if !a.EqV(a).IsTrue() || a.EqV(b).IsTrue() {
		t.Error("EqV broken")
	}
	if !a.NeV(b).IsTrue() {
		t.Error("NeV broken")
	}
	if !b.LeU(b).IsTrue() || !b.GeS(b).IsTrue() {
		t.Error("Le/Ge reflexivity broken")
	}
}

func TestSlice(t *testing.T) {
	v := New(0xABCD, 16)
	if got := v.Slice(15, 8); got.Uint() != 0xAB || got.Width() != 8 {
		t.Errorf("slice [15:8] = %v", got)
	}
	if got := v.Slice(3, 0); got.Uint() != 0xD {
		t.Errorf("slice [3:0] = %v", got)
	}
	if got := v.Slice(0, 0); got.Uint() != 1 || got.Width() != 1 {
		t.Errorf("slice [0:0] = %v", got)
	}
}

func TestSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slice did not panic")
		}
	}()
	New(0, 8).Slice(8, 0)
}

func TestCat(t *testing.T) {
	v := Cat(New(0xAB, 8), New(0xCD, 8))
	if v.Uint() != 0xABCD || v.Width() != 16 {
		t.Errorf("Cat = %v", v)
	}
	v3 := Cat(New(1, 1), New(0, 2), New(0x7, 3))
	if v3.Uint() != 0b100111 || v3.Width() != 6 {
		t.Errorf("3-way Cat = %v", v3)
	}
}

func TestExtensions(t *testing.T) {
	v := New(0x80, 8)
	if got := v.ZeroExt(16); got.Uint() != 0x0080 {
		t.Errorf("ZeroExt = %v", got)
	}
	if got := v.SignExt(16); got.Uint() != 0xFF80 {
		t.Errorf("SignExt = %v", got)
	}
	// Narrowing truncates in both.
	if got := New(0x1FF, 16).SignExt(8); got.Uint() != 0xFF {
		t.Errorf("narrowing SignExt = %v", got)
	}
}

func TestBit(t *testing.T) {
	v := New(0b1010, 4)
	want := []uint64{0, 1, 0, 1}
	for i, w := range want {
		if got := v.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
	if v.Bit(4) != 0 || v.Bit(-1) != 0 {
		t.Error("out-of-range Bit should read 0")
	}
}

func TestStringForms(t *testing.T) {
	v := New(0x2A, 8)
	if v.String() != "8'h2a" {
		t.Errorf("String() = %q", v.String())
	}
	if v.BinString() != "00101010" {
		t.Errorf("BinString() = %q", v.BinString())
	}
}

// Property: slicing then concatenating reconstructs the original value.
func TestQuickSliceCatRoundTrip(t *testing.T) {
	f := func(bits uint64, cut uint8) bool {
		w := 32
		c := int(cut)%(w-1) + 1 // 1..31
		v := New(bits, w)
		hi := v.Slice(w-1, c)
		lo := v.Slice(c-1, 0)
		return Cat(hi, lo).Eq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverses at every width.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint64, wRaw uint8) bool {
		w := int(wRaw)%MaxWidth + 1
		x, y := New(a, w), New(b, w)
		return x.Add(y).Sub(y).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed and unsigned views agree on the bit pattern.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(a uint64, wRaw uint8) bool {
		w := int(wRaw)%MaxWidth + 1
		v := New(a, w)
		return New(uint64(v.Int()), w).Eq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DivU/RemU satisfy the division identity when divisor != 0.
func TestQuickDivRemIdentity(t *testing.T) {
	f := func(a, b uint64) bool {
		w := 32
		x, y := New(a, w), New(b, w)
		if y.IsZero() {
			return true
		}
		return y.Mul(x.DivU(y)).Add(x.RemU(y)).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Not is an involution and And/Or satisfy De Morgan.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b uint64, wRaw uint8) bool {
		w := int(wRaw)%MaxWidth + 1
		x, y := New(a, w), New(b, w)
		if !x.Not().Not().Eq(x) {
			return false
		}
		return x.And(y).Not().Eq(x.Not().Or(y.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(12345, 32), New(67890, 32)
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
	_ = x
}

// Package xpdl is a Go implementation of XPDL — the hardware description
// language of "Sequential Specifications for Precise Hardware Exceptions"
// (ASPLOS 2026) — together with the compiler, static checker, exception
// translation, cycle-accurate simulator and synthesis cost model used to
// reproduce the paper's evaluation.
//
// The typical flow is:
//
//	design, err := xpdl.Compile(src)            // parse + check + translate
//	m, err := design.NewMachine(sim.Config{...}) // bind externs, build simulator
//	m.Start("cpu", val.New(0, 32))
//	m.Run(100000)
//
// See the examples directory for complete programs.
package xpdl

import (
	"xpdl/internal/check"
	"xpdl/internal/core"
	"xpdl/internal/pdl/ast"
	"xpdl/internal/pdl/parser"
	"xpdl/internal/sim"
)

// Design is a compiled XPDL program: parsed, statically checked, and with
// every pipeline's exception logic translated into base-PDL form.
type Design struct {
	// Source is the original program text.
	Source string
	// Prog is the parsed syntax tree.
	Prog *ast.Program
	// Info carries the checker's analysis results.
	Info *check.Info
	// Translations maps each pipeline to its exception translation.
	Translations map[string]*core.Result
}

// Compile parses, checks and translates an XPDL program.
func Compile(src string) (*Design, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := check.Check(prog)
	if err != nil {
		return nil, err
	}
	return &Design{
		Source:       src,
		Prog:         prog,
		Info:         info,
		Translations: core.TranslateProgram(info),
	}, nil
}

// NewMachine builds a cycle-accurate simulator for the design.
func (d *Design) NewMachine(cfg sim.Config) (*sim.Machine, error) {
	return sim.New(d.Info, d.Translations, cfg)
}

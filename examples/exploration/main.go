// Exploration: design-space exploration across the processor variants —
// the workflow PDL/XPDL is built for. For each configuration the program
// compiles the design, runs a workload for CPI, and evaluates the area
// and frequency models, printing a compact comparison.
//
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"log"

	"xpdl"
	"xpdl/internal/designs"
	"xpdl/internal/ir"
	"xpdl/internal/sim"
	"xpdl/internal/synth"
	"xpdl/internal/val"
	"xpdl/internal/workloads"
)

func main() {
	kernel, err := workloads.ByName("aes")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := kernel.Assemble()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("design-space exploration over the processor variants and derived microarchitectures")
	fmt.Println("(workload: aes kernel; area/fmax: 45 nm model)")
	fmt.Println()
	fmt.Printf("%-9s %8s %10s %10s %9s %6s\n",
		"variant", "LOC", "area µm²", "fmax MHz", "CPI", "MIPS*")

	type config struct {
		name string
		src  string
		loc  int
	}
	var configs []config
	for _, v := range designs.Variants() {
		configs = append(configs, config{v.String(), designs.Source(v), designs.CountLOC(v).Total()})
	}
	// Two derived microarchitectures: a three-stage commit tail (padding
	// stages in action) and a basic-lock register file (§3.4 trade-off).
	configs = append(configs,
		config{"all+deep", designs.DeepCommitSource(), designs.CountLOC(designs.All).Total() + 4},
		config{"all+basic", designs.BasicRfSource(), designs.CountLOC(designs.All).Total()},
	)

	for _, c := range configs {
		d, err := xpdl.Compile(c.src)
		if err != nil {
			log.Fatal(err)
		}
		low := ir.Lower(d.Info, d.Translations)
		area := synth.AreaOf(low, synth.ASIC45())
		timing := synth.TimingOf(low, synth.ASIC45())

		m, err := d.NewMachine(sim.Config{Externs: designs.Externs()})
		if err != nil {
			log.Fatal(err)
		}
		for i, w := range prog.Text {
			m.MemPoke("imem", uint64(i), val.New(uint64(w), 32))
		}
		for i, w := range prog.Data {
			m.MemPoke("dmem", uint64(i), val.New(uint64(w), 32))
		}
		if err := m.Start("cpu", val.New(0, 32)); err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(kernel.MaxSteps * 10); err != nil {
			log.Fatal(err)
		}
		var retired int
		for _, r := range m.Retired() {
			if r.Pipe == "cpu" {
				retired++
			}
		}
		cpi := float64(m.Cycle()) / float64(retired)
		mips := timing.FMaxMHz() / cpi
		fmt.Printf("%-9s %8d %10.0f %10.2f %9.3f %6.1f\n",
			c.name, c.loc, area.Total(), timing.FMaxMHz(), cpi, mips)
	}
	fmt.Println("\n* MIPS = fmax / CPI, the single-number figure of merit")
	fmt.Println("takeaway: exception support is free in CPI, costs a few percent")
	fmt.Println("of frequency and a modest amount of area — the paper's result.")
}

// Command xpdlvet runs XPDL's static analyses — the error checks plus the
// whole-program lints (static lock-order deadlock detection, dead code,
// stage cost) — and reports structured diagnostics without compiling.
//
// Usage:
//
//	xpdlvet [-json] [-Werror] [-stage-budget ns] [file.xpdl ...]
//	xpdlvet -design base|fatal|trap|csr|all [flags]
//	xpdlvet -design all -bveq [-bveq-len K] [-bveq-width W] [-bveq-window C]
//	xpdlvet -bveq -bveq-spec spec.json [-bveq-corrupt abort-strip]
//
// Files may declare diagnostics they intentionally trigger with
// `// xpdlvet:expect CODE ...` comments; expected diagnostics are
// suppressed from the report, and expected codes that never fire are
// flagged so the annotations cannot go stale. DIAGNOSTICS.md lists every
// code.
//
// -bveq additionally runs the bounded exhaustive equivalence gate
// (internal/bveq) over each selected design: every program up to
// -bveq-len instructions in the design's micro-ISA projection, crossed
// with every exception site and every interrupt-arrival cycle inside
// -bveq-window, is executed on the translated design and compared
// bit-exactly against the sequential specification. A clean sweep stamps
// the design bounded-verified (reported in the JSON badge object); a
// divergence is shrunk and rendered as an E-BVEQ-* diagnostic. The gate
// applies to -design variants and to -bveq-spec (a designgen DesignSpec
// JSON file, as written by the fuzzer's repro bundles); plain .xpdl file
// arguments are vetted but not gated — the gate needs the design's ISA
// projection, which arbitrary sources do not carry.
//
// Exit status: 2 if any (unexpected) error was reported, 9 if the bveq
// gate found a counterexample, 1 if -Werror and any unexpected warning
// or unmet expectation remains, 0 otherwise. With -json, one JSON array
// of every diagnostic from every input is written to stdout — or, with
// -bveq, an object {"diagnostics": [...], "bounded_verified": [...]}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xpdl/internal/bveq"
	"xpdl/internal/core"
	"xpdl/internal/designgen"
	"xpdl/internal/designs"
	"xpdl/internal/diag"
	"xpdl/internal/vet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	werror := flag.Bool("Werror", false, "treat warnings as errors (exit 1)")
	budget := flag.Float64("stage-budget", 0, fmt.Sprintf("stage critical-path budget in ns (default %.1f)", vet.DefaultStageBudgetNS))
	design := flag.String("design", "", "vet built-in processor variants (base|fatal|trap|csr|all)")
	bveqOn := flag.Bool("bveq", false, "run the bounded exhaustive equivalence gate on selected designs")
	bveqLen := flag.Int("bveq-len", 3, "bveq: max program length in instructions")
	bveqWidth := flag.Int("bveq-width", 2, "bveq: immediate-domain width of the ISA projection")
	bveqWindow := flag.Int("bveq-window", 12, "bveq: interrupt-arrival window in cycles")
	bveqExec := flag.String("bveq-exec", "vm", "bveq: primary execution engine (vm|closure|interp)")
	bveqSpec := flag.String("bveq-spec", "", "bveq: gate a generated design from a DesignSpec JSON file (implies -bveq)")
	bveqCorrupt := flag.String("bveq-corrupt", "", "bveq: apply a named seeded translation bug (gate self-test)")
	flag.Parse()

	type input struct{ name, src string }
	var inputs []input
	var variants []designs.Variant
	if *design != "" {
		found := false
		for _, v := range designs.Variants() {
			if *design == v.String() || *design == "all" {
				inputs = append(inputs, input{"design:" + v.String(), designs.Source(v)})
				variants = append(variants, v)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "xpdlvet: unknown design %q\n", *design)
			os.Exit(2)
		}
	}
	var specTarget bveq.Target
	var specName, specSrc string
	runBveq := *bveqOn || *bveqSpec != ""
	var corrupt func(map[string]*core.Result)
	if *bveqCorrupt != "" {
		corrupt = bveq.Corruptions[*bveqCorrupt]
		if corrupt == nil {
			fmt.Fprintf(os.Stderr, "xpdlvet: unknown corruption %q\n", *bveqCorrupt)
			os.Exit(2)
		}
	}
	if *bveqSpec != "" {
		raw, err := os.ReadFile(*bveqSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvet:", err)
			os.Exit(2)
		}
		var d designgen.DesignSpec
		if err := json.Unmarshal(raw, &d); err != nil {
			fmt.Fprintf(os.Stderr, "xpdlvet: %s: %v\n", *bveqSpec, err)
			os.Exit(2)
		}
		d.Normalize()
		t, err := designgen.BveqTarget(&d, *bveqWidth, corrupt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvet:", err)
			os.Exit(2)
		}
		specTarget, specName, specSrc = t, *bveqSpec, d.Source()
		inputs = append(inputs, input{*bveqSpec, specSrc})
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvet:", err)
			os.Exit(2)
		}
		inputs = append(inputs, input{path, string(data)})
	}
	if len(inputs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if runBveq && len(variants) == 0 && specTarget == nil {
		fmt.Fprintln(os.Stderr, "xpdlvet: -bveq needs -design and/or -bveq-spec (plain files carry no ISA projection)")
		os.Exit(2)
	}

	totalErrs, totalWarns := 0, 0
	var allDiags []diag.Diagnostic
	for _, in := range inputs {
		r := vet.Analyze(in.name, in.src, vet.Options{StageBudgetNS: *budget})
		allDiags = append(allDiags, r.Diags...)
		errs, warns := r.Counts()
		totalErrs += errs
		totalWarns += warns
		if *jsonOut {
			continue
		}
		rend := diag.NewRenderer(in.name, in.src)
		fmt.Fprint(os.Stderr, rend.RenderAll(r.Unexpected))
		for _, code := range r.Unmet {
			fmt.Fprintf(os.Stderr, "%s: expected diagnostic %s never fired; drop it from the xpdlvet:expect directive\n", in.name, code)
		}
		if n := len(r.Expected); n > 0 {
			fmt.Fprintf(os.Stderr, "xpdlvet: %s: %d expected diagnostic(s) suppressed\n", in.name, n)
		}
	}

	// The bounded gate runs only on statically clean designs: a design
	// the checker rejects has no translation to verify.
	counterexamples := 0
	var badges []bveq.Badge
	if runBveq && totalErrs == 0 {
		bounds := bveq.Bounds{K: *bveqLen, Width: *bveqWidth, Window: *bveqWindow, Engine: *bveqExec}
		type gated struct {
			t         bveq.Target
			name, src string
		}
		var targets []gated
		for _, v := range variants {
			t, err := bveq.NewVariantTarget(v, *bveqWidth, corrupt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xpdlvet:", err)
				os.Exit(2)
			}
			targets = append(targets, gated{t, "design:" + v.String(), designs.Source(v)})
		}
		if specTarget != nil {
			targets = append(targets, gated{specTarget, specName, specSrc})
		}
		for _, g := range targets {
			start := time.Now()
			rep, err := bveq.Verify(g.t, bounds)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xpdlvet:", err)
				os.Exit(2)
			}
			if len(rep.Counterexamples) > 0 {
				rep.Counterexamples[0] = bveq.ShrinkPoint(g.t, bounds, rep.Counterexamples[0])
			}
			counterexamples += len(rep.Counterexamples)
			for _, ce := range rep.Counterexamples {
				allDiags = append(allDiags, ce.Diagnostic())
			}
			badges = append(badges, bveq.Badge{
				Report: *rep, Engine: *bveqExec,
				WallMS: time.Since(start).Milliseconds(),
			})
			if *jsonOut {
				continue
			}
			rend := diag.NewRenderer(g.name, g.src)
			for _, ce := range rep.Counterexamples {
				fmt.Fprint(os.Stderr, rend.RenderAll([]diag.Diagnostic{ce.Diagnostic()}))
			}
			if rep.Verified {
				fmt.Fprintf(os.Stderr, "xpdlvet: %s bounded-verified: %d programs, %d points (K=%d, window=%d, %dms)\n",
					g.name, rep.Programs, rep.Points, rep.K, rep.Window, badges[len(badges)-1].WallMS)
			} else {
				fmt.Fprintf(os.Stderr, "xpdlvet: %s NOT verified: %d counterexample(s) in %d points\n",
					g.name, len(rep.Counterexamples), rep.Points)
			}
		}
	}

	if *jsonOut {
		data, err := diag.ToJSON(allDiags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpdlvet:", err)
			os.Exit(2)
		}
		if runBveq {
			payload := struct {
				Diagnostics     json.RawMessage `json:"diagnostics"`
				BoundedVerified []bveq.Badge    `json:"bounded_verified"`
			}{Diagnostics: json.RawMessage(data), BoundedVerified: badges}
			out, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "xpdlvet:", err)
				os.Exit(2)
			}
			os.Stdout.Write(append(out, '\n'))
		} else {
			os.Stdout.Write(data)
		}
	}

	switch {
	case totalErrs > 0:
		fmt.Fprintf(os.Stderr, "xpdlvet: %d error(s), %d warning(s)\n", totalErrs, totalWarns)
		os.Exit(2)
	case counterexamples > 0:
		fmt.Fprintf(os.Stderr, "xpdlvet: bveq: %d counterexample(s)\n", counterexamples)
		os.Exit(9)
	case totalWarns > 0:
		fmt.Fprintf(os.Stderr, "xpdlvet: %d warning(s)\n", totalWarns)
		if *werror {
			os.Exit(1)
		}
	}
}

package diag

import (
	"reflect"
	"strings"
	"testing"

	"xpdl/internal/pdl/token"
)

func pos(l, c int) token.Pos { return token.Pos{Line: l, Col: c} }

func TestListCapEmitsLimitDiagnostic(t *testing.T) {
	l := &List{Max: 3}
	for i := 0; i < 10; i++ {
		l.Errorf(pos(i+1, 1), "E-UNDEF", "error %d", i)
	}
	diags := l.Flush()
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 3 errors + E-LIMIT", len(diags))
	}
	last := diags[3]
	if last.Code != "E-LIMIT" {
		t.Errorf("final code = %s, want E-LIMIT", last.Code)
	}
	if !strings.Contains(last.Message, "7 more") {
		t.Errorf("limit message %q does not count the 7 dropped", last.Message)
	}
	if !last.Pos.IsValid() {
		t.Error("E-LIMIT has no position")
	}
}

func TestWarningsNotCapped(t *testing.T) {
	l := &List{Max: 2}
	for i := 0; i < 5; i++ {
		l.Warnf(pos(1, i+1), "W-DEAD-VAR", "w%d", i)
	}
	if n := len(l.Flush()); n != 5 {
		t.Errorf("stored %d warnings, want 5 (warnings are uncapped)", n)
	}
	if l.HasErrors() {
		t.Error("HasErrors true with only warnings")
	}
}

func TestRenderCaretExcerpt(t *testing.T) {
	src := "pipe p(x: uint<8>)[] {\n    y = zzz;\n}"
	r := NewRenderer("t.xpdl", src)
	d := Diagnostic{
		Pos: pos(2, 9), End: pos(2, 11),
		Severity: Error, Code: "E-UNDEF", Message: `undefined name "zzz"`,
		Notes:   []string{"declare it or fix the spelling"},
		Related: []Related{{Pos: pos(1, 1), Message: "in pipeline p"}},
	}
	out := r.Render(d)
	for _, want := range []string{
		`t.xpdl:2:9: error[E-UNDEF]: undefined name "zzz"`,
		"    y = zzz;",
		"        ^^^",
		"note: declare it or fix the spelling",
		"t.xpdl:1:1: in pipeline p",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTabAlignment(t *testing.T) {
	src := "\tv = bad;"
	r := NewRenderer("", src)
	out := r.Render(Diagnostic{Pos: pos(1, 6), Severity: Error, Code: "E-UNDEF", Message: "x"})
	// The pad before the caret must reuse the tab so the caret lines up
	// under column 6 in any tab rendering.
	if !strings.Contains(out, "    \t    ^") {
		t.Errorf("caret line not tab-aligned:\n%q", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: pos(3, 7), End: pos(3, 9), Severity: Error, Code: "E-R3", Message: "m",
			Notes: []string{"n1", "n2"}, Related: []Related{{Pos: pos(1, 2), Message: "r"}}},
		{Pos: pos(9, 1), Severity: Warning, Code: "W-LOCK-ORDER", Message: "cycle"},
	}
	data, err := ToJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, diags)
	}
	if !strings.Contains(string(data), `"severity": "warning"`) {
		t.Errorf("JSON severities must be strings:\n%s", data)
	}
}

func TestToJSONEmpty(t *testing.T) {
	data, err := ToJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Errorf("empty list = %q, want []", data)
	}
}

func TestSortOrdersByPosition(t *testing.T) {
	diags := []Diagnostic{
		{Pos: pos(5, 1), Severity: Warning, Code: "B"},
		{Pos: pos(2, 9), Severity: Error, Code: "A"},
		{Pos: pos(2, 9), Severity: Warning, Code: "C"},
	}
	Sort(diags)
	if diags[0].Code != "A" || diags[1].Code != "C" || diags[2].Code != "B" {
		t.Errorf("sorted order = %s %s %s", diags[0].Code, diags[1].Code, diags[2].Code)
	}
}

func TestParseDirectives(t *testing.T) {
	src := `// a fixture
// xpdlvet:expect E-UNDEF W-DEAD-VAR
//xpdlvet:stage-budget 2.5
pipe p(x: uint<8>)[] { y = x; }
`
	d := ParseDirectives(src)
	if !d.Expect["E-UNDEF"] || !d.Expect["W-DEAD-VAR"] || len(d.Expect) != 2 {
		t.Errorf("Expect = %v", d.Expect)
	}
	if d.StageBudgetNS != 2.5 {
		t.Errorf("StageBudgetNS = %v", d.StageBudgetNS)
	}
}

func TestDirectivesSplit(t *testing.T) {
	dir := Directives{Expect: map[string]bool{"E-UNDEF": true, "W-NEVER": true}}
	diags := []Diagnostic{
		{Pos: pos(1, 1), Severity: Error, Code: "E-UNDEF"},
		{Pos: pos(2, 1), Severity: Warning, Code: "W-DEAD-VAR"},
	}
	exp, unexp, unmet := dir.Split(diags)
	if len(exp) != 1 || exp[0].Code != "E-UNDEF" {
		t.Errorf("expected = %v", exp)
	}
	if len(unexp) != 1 || unexp[0].Code != "W-DEAD-VAR" {
		t.Errorf("unexpected = %v", unexp)
	}
	if len(unmet) != 1 || unmet[0] != "W-NEVER" {
		t.Errorf("unmet = %v", unmet)
	}
}

func TestToError(t *testing.T) {
	if err := ToError([]Diagnostic{{Pos: pos(1, 1), Severity: Warning, Code: "W-X", Message: "w"}}); err != nil {
		t.Errorf("warnings-only ToError = %v, want nil", err)
	}
	err := ToError([]Diagnostic{{Pos: pos(4, 2), Severity: Error, Code: "E-R3", Message: "boom"}})
	if err == nil || !strings.Contains(err.Error(), "4:2: error[E-R3]: boom") {
		t.Errorf("ToError = %v", err)
	}
}
